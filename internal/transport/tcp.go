package transport

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/wire"
)

// Listen opens the coordinator's TCP endpoint. Cancelling ctx shuts the
// listener and every link it accepted down; that is the graceful-exit
// path for a serving coordinator. addr uses the usual "host:port" form
// (":0" picks a free port — see Addr).
func Listen(ctx context.Context, addr string) (*Listener, error) {
	var lc net.ListenConfig
	ln, err := lc.Listen(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &Listener{ln: ln}
	if ctx != nil && ctx.Done() != nil {
		stop := make(chan struct{})
		l.stop = stop
		go func() {
			select {
			case <-ctx.Done():
				l.Close()
			case <-stop:
			}
		}()
	}
	return l, nil
}

// Listener accepts peer connections for a coordinator.
type Listener struct {
	ln   net.Listener
	stop chan struct{}

	mu     sync.Mutex
	links  []*tcpLink
	closed bool
}

// Addr returns the bound address, including the kernel-chosen port for
// ":0" listens.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Accept waits for the next peer connection and wraps it in a Link. The
// returned link is also closed when the listener shuts down.
func (l *Listener) Accept() (Link, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	lk := newTCPLink(c)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		lk.Close()
		return nil, ErrClosed
	}
	l.links = append(l.links, lk)
	l.mu.Unlock()
	return lk, nil
}

// AcceptN accepts exactly n peer connections, in arrival order. On error
// the already-accepted links are closed.
func (l *Listener) AcceptN(n int) ([]Link, error) {
	links := make([]Link, 0, n)
	for len(links) < n {
		lk, err := l.Accept()
		if err != nil {
			for _, a := range links {
				a.Close()
			}
			return nil, err
		}
		links = append(links, lk)
	}
	return links, nil
}

// Close shuts the listener and all accepted links down. Idempotent.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	links := l.links
	l.links = nil
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
	}
	err := l.ln.Close()
	for _, lk := range links {
		lk.Close()
	}
	return err
}

// Dial connects a peer to the coordinator at addr. Cancelling ctx aborts
// an in-flight dial and closes the established link.
func Dial(ctx context.Context, addr string) (Link, error) {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	lk := newTCPLink(c)
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				lk.Close()
			case <-lk.done:
			}
		}()
	}
	return lk, nil
}

// tcpLink frames payloads onto a TCP stream as uvarint length prefixes
// followed by the payload bytes.
type tcpLink struct {
	stats
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	done chan struct{}

	sendMu  sync.Mutex
	prefix  []byte
	recvBuf []byte

	closeMu sync.Mutex
	closed  bool
}

func newTCPLink(c net.Conn) *tcpLink {
	if tc, ok := c.(*net.TCPConn); ok {
		// The engine's frames are small request/reply pairs; waiting for
		// segment coalescing would serialize every protocol round on the
		// delayed-ACK clock.
		tc.SetNoDelay(true)
	}
	return &tcpLink{
		conn: c,
		br:   bufio.NewReader(c),
		bw:   bufio.NewWriter(c),
		done: make(chan struct{}),
	}
}

// Send implements Link.
func (l *tcpLink) Send(payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds MaxFrame", len(payload))
	}
	l.sendMu.Lock()
	defer l.sendMu.Unlock()
	l.prefix = wire.AppendUvarint(l.prefix[:0], uint64(len(payload)))
	if _, err := l.bw.Write(l.prefix); err != nil {
		return l.sendErr(err)
	}
	if _, err := l.bw.Write(payload); err != nil {
		return l.sendErr(err)
	}
	if err := l.bw.Flush(); err != nil {
		return l.sendErr(err)
	}
	l.sent(frameLen(len(payload)))
	return nil
}

func (l *tcpLink) sendErr(err error) error {
	if l.isClosed() {
		return ErrClosed
	}
	return err
}

// Recv implements Link. The returned payload aliases an internal buffer
// that the next Recv overwrites.
func (l *tcpLink) Recv() ([]byte, error) {
	n, err := l.readPrefix()
	if err != nil {
		return nil, l.recvErr(err)
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: incoming frame of %d bytes exceeds MaxFrame", n)
	}
	if cap(l.recvBuf) < int(n) {
		l.recvBuf = make([]byte, n)
	}
	buf := l.recvBuf[:n]
	if _, err := io.ReadFull(l.br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // prefix promised more bytes
		}
		return nil, l.recvErr(err)
	}
	l.received(frameLen(int(n)))
	return buf, nil
}

// readPrefix reads the uvarint length prefix byte-by-byte off the stream.
func (l *tcpLink) readPrefix() (uint64, error) {
	var x uint64
	var shift uint
	for i := 0; ; i++ {
		b, err := l.br.ReadByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				return 0, io.ErrUnexpectedEOF // truncated mid-prefix
			}
			return 0, err
		}
		if i >= 10 || (i == 9 && b > 1) {
			return 0, wire.ErrOverflow
		}
		if b < 0x80 {
			return x | uint64(b)<<shift, nil
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
}

func (l *tcpLink) recvErr(err error) error {
	if l.isClosed() {
		return ErrClosed
	}
	return err
}

func (l *tcpLink) isClosed() bool {
	l.closeMu.Lock()
	defer l.closeMu.Unlock()
	return l.closed
}

// Close implements Link. Idempotent.
func (l *tcpLink) Close() error {
	l.closeMu.Lock()
	if l.closed {
		l.closeMu.Unlock()
		return nil
	}
	l.closed = true
	l.closeMu.Unlock()
	close(l.done)
	return l.conn.Close()
}

// Stats implements StatsProvider.
func (l *tcpLink) Stats() LinkStats { return l.snapshot() }
