package transport

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/rng"
	"repro/internal/wire"
)

// Listen opens the coordinator's TCP endpoint. Cancelling ctx shuts the
// listener and every link it accepted down; that is the graceful-exit
// path for a serving coordinator. addr uses the usual "host:port" form
// (":0" picks a free port — see Addr).
func Listen(ctx context.Context, addr string) (*Listener, error) {
	var lc net.ListenConfig
	ln, err := lc.Listen(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &Listener{ln: ln}
	if ctx != nil && ctx.Done() != nil {
		stop := make(chan struct{})
		l.stop = stop
		go func() {
			select {
			case <-ctx.Done():
				l.Close()
			case <-stop:
			}
		}()
	}
	return l, nil
}

// Listener accepts peer connections for a coordinator.
type Listener struct {
	ln   net.Listener
	stop chan struct{}

	mu     sync.Mutex
	links  []*tcpLink
	closed bool
}

// Addr returns the bound address, including the kernel-chosen port for
// ":0" listens.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Accept waits for the next peer connection and wraps it in a Link. The
// returned link is also closed when the listener shuts down.
func (l *Listener) Accept() (Link, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	lk := newTCPLink(c)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		lk.Close()
		return nil, ErrClosed
	}
	l.links = append(l.links, lk)
	l.mu.Unlock()
	return lk, nil
}

// AcceptN accepts exactly n peer connections, in arrival order. On error
// the already-accepted links are closed.
func (l *Listener) AcceptN(n int) ([]Link, error) {
	links := make([]Link, 0, n)
	for len(links) < n {
		lk, err := l.Accept()
		if err != nil {
			for _, a := range links {
				a.Close()
			}
			return nil, err
		}
		links = append(links, lk)
	}
	return links, nil
}

// Close shuts the listener and all accepted links down. Idempotent.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	links := l.links
	l.links = nil
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
	}
	err := l.ln.Close()
	for _, lk := range links {
		lk.Close()
	}
	return err
}

// Dial connects a peer to the coordinator at addr. Cancelling ctx aborts
// an in-flight dial and closes the established link.
func Dial(ctx context.Context, addr string) (Link, error) {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	lk := newTCPLink(c)
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				lk.Close()
			case <-lk.done:
			}
		}()
	}
	return lk, nil
}

// maxDialBackoff caps DialRetry's exponential backoff: past a couple of
// seconds, longer waits only delay recovery without reducing load.
const maxDialBackoff = 2 * time.Second

// DialRetry dials addr like Dial, retrying failed attempts up to attempts
// times with jittered exponential backoff starting at base (each wait is
// uniform in [backoff/2, backoff*3/2), doubling up to a cap). It exists
// for peers that start before their coordinator listens — topkmon -join —
// where the first dial's "connection refused" is expected, not fatal.
// Cancelling ctx aborts both in-flight dials and backoff waits promptly.
// attempts < 1 means one attempt; base <= 0 selects 50ms.
func DialRetry(ctx context.Context, addr string, attempts int, base time.Duration) (Link, error) {
	if attempts < 1 {
		attempts = 1
	}
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// The jitter spreads reconnection stampedes; it needs no reproducible
	// seed, so wall-clock seeding is fine here (unlike protocol RNGs).
	r := rng.New(uint64(time.Now().UnixNano()), 0xd1a1)
	backoff := base
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			wait := backoff/2 + time.Duration(r.Uint64n(uint64(backoff)))
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if backoff < maxDialBackoff {
				backoff *= 2
			}
		}
		lk, err := Dial(ctx, addr)
		if err == nil {
			return lk, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, lastErr
		}
	}
	return nil, fmt.Errorf("transport: dial %s failed after %d attempts: %w", addr, attempts, lastErr)
}

// tcpLink frames payloads onto a TCP stream as uvarint length prefixes
// followed by the payload bytes. Writes are buffered until Flush (or the
// next Recv — the flush-before-read guard); reads go through one owned
// buffer, so an incoming frame is copied exactly once, kernel to rbuf,
// and Recv returns a view into it.
type tcpLink struct {
	stats
	conn net.Conn
	done chan struct{}

	sendMu sync.Mutex // guards bw, prefix, dirty
	bw     *bufio.Writer
	prefix []byte
	dirty  bool // bytes buffered since the last flush

	rbuf       []byte // read buffer; [rpos, rend) is unconsumed stream data
	rpos, rend int

	closeMu sync.Mutex
	closed  bool
}

const readBufSize = 1 << 12

func newTCPLink(c net.Conn) *tcpLink {
	if tc, ok := c.(*net.TCPConn); ok {
		// Both ends — accepted and dialing — disable Nagle: the engine's
		// frames are latency-bound request/reply traffic, and waiting for
		// segment coalescing would serialize every protocol round on the
		// delayed-ACK clock. Coalescing is done deliberately instead, by
		// the write buffer and the wire batch envelope.
		tc.SetNoDelay(true)
	}
	return &tcpLink{
		conn: c,
		bw:   bufio.NewWriter(c),
		rbuf: make([]byte, readBufSize),
		done: make(chan struct{}),
	}
}

// Send implements Link: it frames the payload into the write buffer and
// returns without transmitting. Flush or the next Recv pushes it out.
func (l *tcpLink) Send(payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds MaxFrame", len(payload))
	}
	l.sendMu.Lock()
	defer l.sendMu.Unlock()
	l.prefix = wire.AppendUvarint(l.prefix[:0], uint64(len(payload)))
	if _, err := l.bw.Write(l.prefix); err != nil {
		return l.sendErr(err)
	}
	if _, err := l.bw.Write(payload); err != nil {
		return l.sendErr(err)
	}
	l.dirty = true
	l.sent(frameLen(len(payload)))
	return nil
}

// Flush implements Flusher: it writes out every frame buffered by Send.
func (l *tcpLink) Flush() error {
	l.sendMu.Lock()
	defer l.sendMu.Unlock()
	if !l.dirty {
		return nil
	}
	l.dirty = false
	if err := l.bw.Flush(); err != nil {
		return l.sendErr(err)
	}
	return nil
}

func (l *tcpLink) sendErr(err error) error {
	if l.isClosed() {
		return ErrClosed
	}
	return err
}

// Recv implements Link. The returned payload aliases the read buffer and
// is overwritten by the next Recv. Pending writes are flushed first, so a
// request/reply caller that never calls Flush cannot deadlock waiting for
// the reply to a request still sitting in the write buffer.
func (l *tcpLink) Recv() ([]byte, error) {
	if err := l.Flush(); err != nil {
		return nil, err
	}
	n, err := l.readPrefix()
	if err != nil {
		return nil, l.recvErr(err)
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: incoming frame of %d bytes exceeds MaxFrame", n)
	}
	if err := l.ensure(int(n)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // prefix promised more bytes
		}
		return nil, l.recvErr(err)
	}
	buf := l.rbuf[l.rpos : l.rpos+int(n)]
	l.rpos += int(n)
	l.received(frameLen(int(n)))
	return buf, nil
}

// readPrefix parses the uvarint length prefix from the buffered stream.
func (l *tcpLink) readPrefix() (uint64, error) {
	var x uint64
	var shift uint
	for i := 0; ; i++ {
		if l.rpos == l.rend {
			if err := l.fill(); err != nil {
				if err == io.EOF && i > 0 {
					return 0, io.ErrUnexpectedEOF // truncated mid-prefix
				}
				return 0, err
			}
		}
		b := l.rbuf[l.rpos]
		l.rpos++
		if i >= 10 || (i == 9 && b > 1) {
			return 0, wire.ErrOverflow
		}
		if b < 0x80 {
			return x | uint64(b)<<shift, nil
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
}

// ensure makes at least n unconsumed bytes available at rbuf[rpos:],
// compacting and growing the buffer as needed and reading the remainder
// directly off the connection — one copy, no intermediate reader.
func (l *tcpLink) ensure(n int) error {
	if l.rend-l.rpos >= n {
		return nil
	}
	if l.rpos > 0 {
		copy(l.rbuf, l.rbuf[l.rpos:l.rend])
		l.rend -= l.rpos
		l.rpos = 0
	}
	if len(l.rbuf) < n {
		grown := make([]byte, n)
		copy(grown, l.rbuf[:l.rend])
		l.rbuf = grown
	}
	for l.rend < n {
		m, err := l.conn.Read(l.rbuf[l.rend:])
		l.rend += m
		if err != nil {
			if err == io.EOF && l.rend >= n {
				return nil
			}
			return err
		}
	}
	return nil
}

// fill reads more stream data into the buffer. It is called only by the
// prefix parser, and only when the buffer ran dry (rpos == rend) — every
// other refill path is ensure(), which compacts.
func (l *tcpLink) fill() error {
	l.rpos, l.rend = 0, 0
	m, err := l.conn.Read(l.rbuf[l.rend:])
	l.rend += m
	if m > 0 {
		return nil
	}
	if err == nil {
		err = io.ErrNoProgress
	}
	return err
}

func (l *tcpLink) recvErr(err error) error {
	if l.isClosed() {
		return ErrClosed
	}
	return err
}

func (l *tcpLink) isClosed() bool {
	l.closeMu.Lock()
	defer l.closeMu.Unlock()
	return l.closed
}

// Close implements Link. Idempotent.
func (l *tcpLink) Close() error {
	l.closeMu.Lock()
	if l.closed {
		l.closeMu.Unlock()
		return nil
	}
	l.closed = true
	l.closeMu.Unlock()
	close(l.done)
	return l.conn.Close()
}

// Stats implements StatsProvider.
func (l *tcpLink) Stats() LinkStats { return l.snapshot() }
