package transport

import (
	"sync"

	"repro/internal/wire"
)

// Pipe returns the two ends of an in-process loopback link. Frames are
// copied on Send, so callers may reuse their buffers immediately. Closing
// either end tears down both directions.
//
// The pipe charges its LinkStats as if each frame had crossed a
// length-prefixed stream (uvarint prefix plus payload), so loopback runs
// report transport volumes comparable to the TCP implementation. Frame
// buffers are recycled between the two ends: the slice Recv returns is
// valid until the receiver's next Recv (the same contract as the TCP
// link), after which it is handed back to the sending side for reuse —
// a steady-state request/reply cycle allocates nothing.
//
// A pipe never buffers writes, so its Flush is a no-op.
func Pipe() (Link, Link) {
	const buffer = 16 // a fan-out sends at most a frame or two per gather
	fwd := newDirection(buffer)
	rev := newDirection(buffer)
	done := make(chan struct{})
	once := &sync.Once{}
	a := &pipeLink{out: fwd, in: rev, done: done, once: once}
	b := &pipeLink{out: rev, in: fwd, done: done, once: once}
	return a, b
}

// direction is one side of the pipe: a frame channel plus a free list the
// receiver returns consumed buffers to.
type direction struct {
	ch   chan []byte
	free chan []byte
}

func newDirection(buffer int) *direction {
	return &direction{
		ch:   make(chan []byte, buffer),
		free: make(chan []byte, buffer+1),
	}
}

type pipeLink struct {
	stats
	out  *direction
	in   *direction
	done chan struct{}
	once *sync.Once // shared: either end closes both directions
	prev []byte     // frame returned by the last Recv, recycled on the next
}

// frameLen is the on-stream size of one frame: prefix plus payload.
func frameLen(payload int) int64 {
	return int64(wire.SizeUvarint(uint64(payload)) + payload)
}

// Send implements Link. Pipes transmit immediately; there is nothing for
// Flush to release.
func (l *pipeLink) Send(payload []byte) error {
	var cp []byte
	select {
	case cp = <-l.out.free:
	default:
	}
	cp = append(cp[:0], payload...)
	select {
	case <-l.done:
		return ErrClosed
	default:
	}
	select {
	case l.out.ch <- cp:
		l.sent(frameLen(len(payload)))
		return nil
	case <-l.done:
		return ErrClosed
	}
}

// Flush implements Flusher as a no-op: Send already delivered.
func (l *pipeLink) Flush() error { return nil }

// Recv implements Link. Frames already in flight when the pipe closes are
// still delivered; ErrClosed follows once the direction is drained. The
// returned slice is valid until the next Recv on this end.
func (l *pipeLink) Recv() ([]byte, error) {
	select {
	case p := <-l.in.ch:
		return l.deliver(p), nil
	default:
	}
	select {
	case p := <-l.in.ch:
		return l.deliver(p), nil
	case <-l.done:
		return nil, ErrClosed
	}
}

// deliver recycles the previously returned frame into the sender's free
// list and hands the new one out.
func (l *pipeLink) deliver(p []byte) []byte {
	if l.prev != nil {
		select {
		case l.in.free <- l.prev:
		default: // free list full; let the buffer go
		}
	}
	l.prev = p
	l.received(frameLen(len(p)))
	return p
}

// Close implements Link. It closes both directions and is idempotent.
func (l *pipeLink) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// Stats implements StatsProvider.
func (l *pipeLink) Stats() LinkStats { return l.snapshot() }
