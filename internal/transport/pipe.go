package transport

import (
	"sync"

	"repro/internal/wire"
)

// Pipe returns the two ends of an in-process loopback link. Frames are
// copied on Send, so callers may reuse their buffers immediately. Closing
// either end tears down both directions.
//
// The pipe charges its LinkStats as if each frame had crossed a
// length-prefixed stream (uvarint prefix plus payload), so loopback runs
// report transport volumes comparable to the TCP implementation.
func Pipe() (Link, Link) {
	const buffer = 16 // the engine is lockstep request/reply; tiny is plenty
	ab := make(chan []byte, buffer)
	ba := make(chan []byte, buffer)
	done := make(chan struct{})
	once := &sync.Once{}
	a := &pipeLink{out: ab, in: ba, done: done, once: once}
	b := &pipeLink{out: ba, in: ab, done: done, once: once}
	return a, b
}

type pipeLink struct {
	stats
	out  chan<- []byte
	in   <-chan []byte
	done chan struct{}
	once *sync.Once // shared: either end closes both directions
}

// frameLen is the on-stream size of one frame: prefix plus payload.
func frameLen(payload int) int64 {
	return int64(wire.SizeUvarint(uint64(payload)) + payload)
}

// Send implements Link.
func (l *pipeLink) Send(payload []byte) error {
	cp := append([]byte(nil), payload...)
	select {
	case <-l.done:
		return ErrClosed
	default:
	}
	select {
	case l.out <- cp:
		l.sent(frameLen(len(payload)))
		return nil
	case <-l.done:
		return ErrClosed
	}
}

// Recv implements Link. Frames already in flight when the pipe closes are
// still delivered; ErrClosed follows once the direction is drained.
func (l *pipeLink) Recv() ([]byte, error) {
	select {
	case p := <-l.in:
		l.received(frameLen(len(p)))
		return p, nil
	default:
	}
	select {
	case p := <-l.in:
		l.received(frameLen(len(p)))
		return p, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

// Close implements Link. It closes both directions and is idempotent.
func (l *pipeLink) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// Stats implements StatsProvider.
func (l *pipeLink) Stats() LinkStats { return l.snapshot() }
