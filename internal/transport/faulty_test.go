package transport

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFaultyPassthrough(t *testing.T) {
	a, b := Pipe()
	fa := NewFaulty(a, FaultPlan{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			p, err := b.Recv()
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if err := b.Send(p); err != nil {
				t.Errorf("echo: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		if err := fa.Send([]byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		p, err := fa.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if len(p) != 1 || p[0] != byte(i) {
			t.Fatalf("echo %d: got %v", i, p)
		}
	}
	<-done
	if fa.Killed() {
		t.Fatal("empty plan killed the link")
	}
	if s := fa.Stats(); s.SentFrames != 5 || s.RecvFrames != 5 {
		t.Fatalf("stats not forwarded: %+v", s)
	}
}

func TestFaultyKill(t *testing.T) {
	a, b := Pipe()
	fa := NewFaulty(a, FaultPlan{KillAt: 5})
	go func() {
		for {
			p, err := b.Recv()
			if err != nil {
				return
			}
			if b.Send(p) != nil {
				return
			}
		}
	}()
	for i := 0; i < 2; i++ { // ops 1-4: two clean exchanges
		if err := fa.Send([]byte{1}); err != nil {
			t.Fatalf("pre-kill send: %v", err)
		}
		if _, err := fa.Recv(); err != nil {
			t.Fatalf("pre-kill recv: %v", err)
		}
	}
	if err := fa.Send([]byte{1}); !errors.Is(err, ErrClosed) { // op 5
		t.Fatalf("kill op returned %v, want ErrClosed", err)
	}
	if !fa.Killed() {
		t.Fatal("not killed")
	}
	if _, err := fa.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-kill recv returned %v", err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("remote side still open: %v", err)
	}
}

func TestFaultyDropOnSend(t *testing.T) {
	a, b := Pipe()
	fa := NewFaulty(a, FaultPlan{DropAt: 1})
	if err := fa.Send([]byte{42}); err != nil {
		t.Fatalf("dropped send reported %v, want nil", err)
	}
	if !fa.Killed() {
		t.Fatal("drop did not cut the connection")
	}
	// The frame was lost and the connection cut: the remote sees only the
	// close, never the payload.
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("remote recv: %v", err)
	}
	if _, err := fa.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("local recv after drop: %v", err)
	}
}

func TestFaultyDropOnRecv(t *testing.T) {
	a, b := Pipe()
	fa := NewFaulty(a, FaultPlan{DropAt: 2})
	if err := fa.Send([]byte{1}); err != nil { // op 1
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := b.Send([]byte{2}); err != nil {
		t.Fatal(err)
	}
	if _, err := fa.Recv(); !errors.Is(err, ErrClosed) { // op 2: discarded
		t.Fatalf("dropped recv returned %v, want ErrClosed", err)
	}
	if !fa.Killed() {
		t.Fatal("drop did not cut")
	}
}

func TestFaultyDupOnSend(t *testing.T) {
	a, b := Pipe()
	fa := NewFaulty(a, FaultPlan{DupAt: 1})
	if err := fa.Send([]byte{9}); err != nil {
		t.Fatalf("dup send: %v", err)
	}
	for i := 0; i < 2; i++ {
		p, err := b.Recv()
		if err != nil {
			t.Fatalf("dup copy %d: %v", i, err)
		}
		if len(p) != 1 || p[0] != 9 {
			t.Fatalf("dup copy %d: got %v", i, p)
		}
	}
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("after duplicates: %v, want ErrClosed", err)
	}
}

func TestFaultyDupOnRecv(t *testing.T) {
	a, b := Pipe()
	fa := NewFaulty(a, FaultPlan{DupAt: 1})
	if err := b.Send([]byte{7}); err != nil {
		t.Fatal(err)
	}
	p1, err := fa.Recv()
	if err != nil || len(p1) != 1 || p1[0] != 7 {
		t.Fatalf("first delivery: %v %v", p1, err)
	}
	p2, err := fa.Recv()
	if err != nil || len(p2) != 1 || p2[0] != 7 {
		t.Fatalf("duplicate delivery: %v %v", p2, err)
	}
	if !fa.Killed() {
		t.Fatal("dup did not cut after redelivery")
	}
	if _, err := fa.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-dup recv: %v", err)
	}
}

func TestFaultyDelayJitterIsSeeded(t *testing.T) {
	// Two links with equal seeds must fault identically; this pins the
	// reproducibility contract without timing assertions.
	mk := func() *Faulty {
		a, b := Pipe()
		go func() {
			for {
				if _, err := b.Recv(); err != nil {
					return
				}
			}
		}()
		return NewFaulty(a, FaultPlan{Delay: time.Microsecond, KillAt: 4, Seed: 11})
	}
	f1, f2 := mk(), mk()
	for i := 0; i < 6; i++ {
		e1 := f1.Send([]byte{0})
		e2 := f2.Send([]byte{0})
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("op %d: plans diverged (%v vs %v)", i, e1, e2)
		}
	}
	if !f1.Killed() || !f2.Killed() {
		t.Fatal("KillAt did not fire")
	}
}

func TestDialRetrySurvivesLateListener(t *testing.T) {
	// Reserve an address, close it, and only start listening after the
	// first dial attempts have failed.
	ln0, err := Listen(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln0.Addr()
	ln0.Close()

	ready := make(chan *Listener, 1)
	go func() {
		time.Sleep(80 * time.Millisecond)
		ln, err := Listen(context.Background(), addr)
		if err != nil {
			ready <- nil
			return
		}
		ready <- ln
		if lk, err := ln.Accept(); err == nil {
			lk.Close()
		}
	}()
	lk, err := DialRetry(context.Background(), addr, 20, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	lk.Close()
	if ln := <-ready; ln != nil {
		ln.Close()
	}
}

func TestDialRetryExhaustsBudget(t *testing.T) {
	ln, err := Listen(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()
	ln.Close()
	start := time.Now()
	if _, err := DialRetry(context.Background(), addr, 3, time.Millisecond); err == nil {
		t.Fatal("dial to a dead address succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry budget of 3 took %v", elapsed)
	}
}

func TestDialRetryCancelAborts(t *testing.T) {
	ln, err := Listen(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()
	ln.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := DialRetry(ctx, addr, 1000, 50*time.Millisecond); err == nil {
		t.Fatal("cancelled dial succeeded")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
}
