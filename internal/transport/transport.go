// Package transport moves the wire-encoded protocol frames between the
// coordinator and its peers. It provides the Link abstraction the
// networked engine (internal/netrun) is written against, with two
// implementations:
//
//   - Pipe: an in-process loopback that delivers frames over channels,
//     used by the loopback engine and the equivalence tests. It simulates
//     the same length-prefix framing cost as TCP so byte statistics are
//     comparable, and recycles frame buffers so a steady-state
//     request/reply cycle allocates nothing.
//   - TCP: a length-prefixed stream protocol — one coordinator listener,
//     n dialing peers, one goroutine-free synchronous read loop per
//     connection, graceful shutdown via context cancellation.
//
// A frame is a uvarint payload length followed by the payload (one
// internal/wire message). Frames are capped at MaxFrame bytes so a
// garbage or hostile stream fails fast instead of exhausting memory.
//
// # Flush semantics
//
// Send may buffer: a link is free to hold framed bytes back until they are
// explicitly released with Flush (see Flusher) — that is what lets the
// pipelined engines coalesce a whole fan-out into one write per link. Two
// rules keep buffering safe for every caller:
//
//   - Recv on a link with unflushed writes flushes them before blocking
//     (the flush-before-read guard), so a strict request/reply loop that
//     never calls Flush cannot deadlock itself waiting for a reply to a
//     request that never left the buffer.
//   - Flush(l) on a link that does not buffer (Pipe, or an external
//     implementation without the Flusher method) is a no-op.
//
// Links only move bytes; they neither interpret frames nor count model
// messages. Model accounting lives in internal/comm, fed by the engines;
// a link's own LinkStats measure what actually crossed this transport —
// frames and framed bytes, control plane included — which is the
// deployment-facing number DESIGN.md contrasts with the model ledger.
package transport

import (
	"errors"
	"sync/atomic"
)

// ErrClosed is returned by operations on a closed link.
var ErrClosed = errors.New("transport: link closed")

// MaxFrame is the largest accepted frame payload, in bytes. The protocol's
// largest message is a dense Observe for one peer's node range (a handful
// of bytes per node), so 1<<26 leaves orders of magnitude of headroom
// while still rejecting nonsense length prefixes immediately.
const MaxFrame = 1 << 26

// Link is one reliable, ordered, message-framed duplex connection between
// the coordinator and a peer. Send and Recv are safe to call from
// different goroutines (the engine's natural usage), but neither is safe
// for concurrent use with itself.
type Link interface {
	// Send frames one payload. The payload is not retained. Send may
	// buffer the framed bytes; Flush (or the next Recv) releases them.
	Send(payload []byte) error
	// Recv blocks for the next frame and returns its payload, after
	// flushing any bytes Send buffered on this link. The returned slice
	// is owned by the caller until the next Recv on implementations that
	// reuse buffers; treat it as valid only until then.
	Recv() ([]byte, error)
	// Close tears the link down; pending and future operations fail.
	// Close is idempotent.
	Close() error
}

// Flusher is implemented by links whose Send buffers: Flush writes out
// everything buffered so far. Safe to call concurrently with Recv (but
// not with Send or another Flush, mirroring Send's contract).
type Flusher interface {
	Flush() error
}

// Flush releases l's buffered writes; it is a no-op for links that
// transmit on Send.
func Flush(l Link) error {
	if f, ok := l.(Flusher); ok {
		return f.Flush()
	}
	return nil
}

// LinkStats counts the traffic that crossed one link, as framed on the
// transport (length prefixes included).
type LinkStats struct {
	SentFrames int64
	SentBytes  int64
	RecvFrames int64
	RecvBytes  int64
}

// Add returns the component-wise sum s + o.
func (s LinkStats) Add(o LinkStats) LinkStats {
	return LinkStats{
		SentFrames: s.SentFrames + o.SentFrames,
		SentBytes:  s.SentBytes + o.SentBytes,
		RecvFrames: s.RecvFrames + o.RecvFrames,
		RecvBytes:  s.RecvBytes + o.RecvBytes,
	}
}

// StatsProvider is implemented by links that track transport statistics.
type StatsProvider interface {
	Stats() LinkStats
}

// StatsOf returns l's transport statistics, or the zero value when l does
// not track any.
func StatsOf(l Link) LinkStats {
	if sp, ok := l.(StatsProvider); ok {
		return sp.Stats()
	}
	return LinkStats{}
}

// stats is the shared atomic implementation backing both link types.
type stats struct {
	sentFrames atomic.Int64
	sentBytes  atomic.Int64
	recvFrames atomic.Int64
	recvBytes  atomic.Int64
}

func (s *stats) sent(bytes int64) {
	s.sentFrames.Add(1)
	s.sentBytes.Add(bytes)
}

func (s *stats) received(bytes int64) {
	s.recvFrames.Add(1)
	s.recvBytes.Add(bytes)
}

func (s *stats) snapshot() LinkStats {
	return LinkStats{
		SentFrames: s.sentFrames.Load(),
		SentBytes:  s.sentBytes.Load(),
		RecvFrames: s.recvFrames.Load(),
		RecvBytes:  s.recvBytes.Load(),
	}
}
