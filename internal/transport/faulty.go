package transport

import (
	"sync"
	"time"

	"repro/internal/rng"
)

// FaultPlan scripts the failure behavior of a Faulty link. Operation
// indices are 1-based and count Send and Recv calls together in the order
// the wrapper sees them; 0 disables a fault. All injected failures are
// fail-stop: after a fault fires, the underlying link is closed and every
// later operation reports ErrClosed — a Faulty never hangs and never
// silently corrupts a frame, it only loses, duplicates, delays, or cuts.
type FaultPlan struct {
	// KillAt closes the connection at the given operation: the operation
	// itself fails with ErrClosed, as a peer process dying mid-protocol
	// would look to the other end.
	KillAt int64
	// DropAt loses one frame and then cuts the connection: a Send at this
	// operation reports success without transmitting, a Recv consumes and
	// discards the incoming frame. The cut models the fail-stop assumption
	// — on a reliable ordered stream a loss without a cut cannot happen,
	// and cutting is what keeps the wrapper hang-free.
	DropAt int64
	// DupAt delivers one frame twice and then cuts: a Send transmits the
	// payload twice, a Recv returns the same frame on this operation and
	// the next. The receiver sees a protocol-desynchronizing duplicate,
	// the canonical "retransmission after a lost ack" corruption.
	DupAt int64
	// Delay, when positive, sleeps a seeded-jittered duration in
	// [Delay/2, Delay*3/2) before every operation, surfacing reordering
	// between links and slow-network behavior.
	Delay time.Duration
	// Seed drives the jitter; plans with equal seeds replay identically.
	Seed uint64
}

// Faulty wraps a Link with scripted fault injection for tests and
// benchmarks. It preserves the Link contract (Send and Recv from
// different goroutines, neither concurrent with itself) and forwards
// Flush and Stats to the wrapped link.
type Faulty struct {
	link Link
	plan FaultPlan

	mu     sync.Mutex
	r      *rng.RNG
	ops    int64
	killed bool
	pend   []byte // frame pending re-delivery (DupAt on Recv)
}

// NewFaulty wraps l with the given fault plan.
func NewFaulty(l Link, plan FaultPlan) *Faulty {
	return &Faulty{link: l, plan: plan, r: rng.New(plan.Seed, 0xfa17)}
}

// faultAction is what begin decided for one operation.
type faultAction uint8

const (
	actNone faultAction = iota
	actClosed
	actKill
	actDrop
	actDup
)

// begin accounts one operation and decides its fate. It never blocks:
// sleeping and link calls happen outside the lock.
func (f *Faulty) begin() (faultAction, time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.killed {
		return actClosed, 0
	}
	f.ops++
	var delay time.Duration
	if f.plan.Delay > 0 {
		delay = f.plan.Delay/2 + time.Duration(f.r.Uint64n(uint64(f.plan.Delay)))
	}
	switch {
	case f.plan.KillAt != 0 && f.ops == f.plan.KillAt:
		return actKill, delay
	case f.plan.DropAt != 0 && f.ops == f.plan.DropAt:
		return actDrop, delay
	case f.plan.DupAt != 0 && f.ops == f.plan.DupAt:
		return actDup, delay
	}
	return actNone, delay
}

// kill cuts the connection (idempotent).
func (f *Faulty) kill() {
	f.mu.Lock()
	already := f.killed
	f.killed = true
	f.mu.Unlock()
	if !already {
		f.link.Close()
	}
}

// Killed reports whether a fault has cut the connection.
func (f *Faulty) Killed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.killed
}

// Send implements Link.
func (f *Faulty) Send(payload []byte) error {
	act, delay := f.begin()
	if delay > 0 {
		time.Sleep(delay)
	}
	switch act {
	case actClosed:
		return ErrClosed
	case actKill:
		f.kill()
		return ErrClosed
	case actDrop:
		// The frame is lost but the sender does not know yet; the cut
		// surfaces on its next operation.
		f.kill()
		return nil
	case actDup:
		if err := f.link.Send(payload); err != nil {
			return err
		}
		if err := f.link.Send(payload); err != nil {
			return err
		}
		_ = Flush(f.link) // push both copies out before the cut below
		f.kill()
		return nil
	default:
		return f.link.Send(payload)
	}
}

// Recv implements Link.
func (f *Faulty) Recv() ([]byte, error) {
	f.mu.Lock()
	if pend := f.pend; pend != nil {
		f.pend = nil
		f.mu.Unlock()
		f.kill() // the duplicate delivered; now cut
		return pend, nil
	}
	f.mu.Unlock()
	act, delay := f.begin()
	if delay > 0 {
		time.Sleep(delay)
	}
	switch act {
	case actClosed:
		return nil, ErrClosed
	case actKill:
		f.kill()
		return nil, ErrClosed
	case actDrop:
		frame, err := f.link.Recv()
		f.kill()
		if err == nil {
			_ = frame // consumed and discarded
		}
		return nil, ErrClosed
	case actDup:
		frame, err := f.link.Recv()
		if err != nil {
			return nil, err
		}
		f.mu.Lock()
		f.pend = append([]byte(nil), frame...)
		f.mu.Unlock()
		return frame, nil
	default:
		return f.link.Recv()
	}
}

// Flush implements Flusher.
func (f *Faulty) Flush() error {
	f.mu.Lock()
	killed := f.killed
	f.mu.Unlock()
	if killed {
		return ErrClosed
	}
	return Flush(f.link)
}

// Close implements Link. Idempotent.
func (f *Faulty) Close() error {
	f.kill()
	return nil
}

// Stats implements StatsProvider with the wrapped link's counters, so
// fault-injected equivalence tests read the same statistics surface.
func (f *Faulty) Stats() LinkStats { return StatsOf(f.link) }
