package filter

import "testing"

// TestTopViewAndAppendTop pins the caching contract: Top returns the same
// ascending membership without allocating, and AppendTop copies.
func TestTopViewAndAppendTop(t *testing.T) {
	s := NewSet(10, 3)
	s.SetMembership([]int{7, 2, 5})
	want := []int{2, 5, 7}
	got := s.Top()
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Top() = %v, want %v", got, want)
	}
	cp := s.AppendTop(nil)
	s.SetMembership([]int{0, 1, 2})
	if cp[0] != 2 || cp[1] != 5 || cp[2] != 7 {
		t.Fatalf("AppendTop copy mutated by SetMembership: %v", cp)
	}
	if avg := testing.AllocsPerRun(100, func() { _ = s.Top() }); avg != 0 {
		t.Fatalf("Top allocates %.2f, want 0", avg)
	}
	buf := make([]int, 0, 3)
	if avg := testing.AllocsPerRun(100, func() { buf = s.AppendTop(buf[:0]) }); avg != 0 {
		t.Fatalf("AppendTop into sized buffer allocates %.2f, want 0", avg)
	}
}

// TestGeneration pins that the generation counter advances exactly on
// membership changes.
func TestGeneration(t *testing.T) {
	s := NewSet(8, 2)
	if s.Generation() != 0 {
		t.Fatalf("fresh set generation = %d, want 0", s.Generation())
	}
	s.SetMembership([]int{3, 1})
	g1 := s.Generation()
	if g1 == 0 {
		t.Fatal("first SetMembership did not advance the generation")
	}
	s.SetMembership([]int{1, 3}) // same membership, different order
	if s.Generation() != g1 {
		t.Fatal("identical membership advanced the generation")
	}
	if !s.InTop(1) || !s.InTop(3) || s.InTop(0) {
		t.Fatal("membership flags wrong after no-op SetMembership")
	}
	s.SetMembership([]int{1, 4})
	if s.Generation() != g1+1 {
		t.Fatalf("membership change advanced generation to %d, want %d", s.Generation(), g1+1)
	}
	if s.InTop(3) || !s.InTop(4) {
		t.Fatal("membership flags not updated")
	}
	top := s.Top()
	if len(top) != 2 || top[0] != 1 || top[1] != 4 {
		t.Fatalf("Top() = %v, want [1 4]", top)
	}
	if s.CountTop() != 2 {
		t.Fatalf("CountTop = %d", s.CountTop())
	}
}

// TestSetMembershipZeroAlloc pins that replacing the membership does not
// allocate once the internal buffers exist.
func TestSetMembershipZeroAlloc(t *testing.T) {
	s := NewSet(32, 4)
	a, b := []int{0, 1, 2, 3}, []int{4, 5, 6, 7}
	s.SetMembership(a)
	s.SetMembership(b)
	flip := false
	if avg := testing.AllocsPerRun(200, func() {
		if flip {
			s.SetMembership(a)
		} else {
			s.SetMembership(b)
		}
		flip = !flip
	}); avg != 0 {
		t.Fatalf("SetMembership allocates %.2f, want 0", avg)
	}
}
