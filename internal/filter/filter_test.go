package filter

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/order"
)

func TestIntervalContains(t *testing.T) {
	iv := Interval{Lo: 3, Hi: 7}
	for k, want := range map[order.Key]bool{2: false, 3: true, 5: true, 7: true, 8: false} {
		if got := iv.Contains(k); got != want {
			t.Fatalf("Contains(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestIntervalShapes(t *testing.T) {
	if f := Full(); f.Lo != order.NegInf || f.Hi != order.PosInf {
		t.Fatalf("Full: %+v", f)
	}
	if a := AtLeast(5); a.Lo != 5 || a.Hi != order.PosInf {
		t.Fatalf("AtLeast: %+v", a)
	}
	if a := AtMost(5); a.Lo != order.NegInf || a.Hi != 5 {
		t.Fatalf("AtMost: %+v", a)
	}
	if p := Point(5); !p.Contains(5) || p.Contains(4) || p.Contains(6) {
		t.Fatalf("Point: %+v", p)
	}
}

func TestIntervalViolates(t *testing.T) {
	iv := Interval{Lo: 10, Hi: 20}
	if v, below := iv.Violates(5); !v || !below {
		t.Fatal("5 should violate below")
	}
	if v, below := iv.Violates(25); !v || below {
		t.Fatal("25 should violate above")
	}
	if v, _ := iv.Violates(15); v {
		t.Fatal("15 should not violate")
	}
	if v, _ := iv.Violates(10); v {
		t.Fatal("boundary Lo should not violate")
	}
	if v, _ := iv.Violates(20); v {
		t.Fatal("boundary Hi should not violate")
	}
}

func TestIntervalEmptyAndString(t *testing.T) {
	if (Interval{Lo: 2, Hi: 1}).Empty() == false {
		t.Fatal("inverted interval should be empty")
	}
	if (Interval{Lo: 1, Hi: 1}).Empty() {
		t.Fatal("point interval is not empty")
	}
	s := Full().String()
	if !strings.Contains(s, "-inf") || !strings.Contains(s, "+inf") {
		t.Fatalf("String: %s", s)
	}
	if got := (Interval{Lo: 3, Hi: 9}).String(); got != "[3, 9]" {
		t.Fatalf("String: %s", got)
	}
}

func TestNewSetDefaults(t *testing.T) {
	s := NewSet(5, 2)
	if s.N() != 5 || s.K() != 2 {
		t.Fatalf("dims: N=%d K=%d", s.N(), s.K())
	}
	for i := 0; i < 5; i++ {
		if s.Interval(i) != Full() {
			t.Fatalf("node %d not full: %v", i, s.Interval(i))
		}
		if s.InTop(i) {
			t.Fatalf("node %d should start outside top-k", i)
		}
	}
}

func TestNewSetPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewSet(0, 1) },
		func() { NewSet(3, 0) },
		func() { NewSet(3, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSetMembership(t *testing.T) {
	s := NewSet(5, 2)
	s.SetMembership([]int{4, 1})
	if !s.InTop(1) || !s.InTop(4) || s.InTop(0) {
		t.Fatal("membership wrong")
	}
	if got := s.Top(); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("Top(): %v", got)
	}
	if s.CountTop() != 2 {
		t.Fatalf("CountTop: %d", s.CountTop())
	}
	// Replacing membership clears the old one.
	s.SetMembership([]int{0, 2})
	if s.InTop(1) || s.InTop(4) || !s.InTop(0) || !s.InTop(2) {
		t.Fatal("membership replacement failed")
	}
}

func TestSetMembershipPanics(t *testing.T) {
	s := NewSet(5, 2)
	for i, f := range []func(){
		func() { s.SetMembership([]int{1}) },
		func() { s.SetMembership([]int{1, 1}) },
		func() { s.SetMembership([]int{1, 9}) },
		func() { s.SetMembership([]int{-1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSetIntervalPanicsOnEmpty(t *testing.T) {
	s := NewSet(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.SetInterval(0, Interval{Lo: 5, Hi: 4})
}

func TestAssignMidpoint(t *testing.T) {
	s := NewSet(4, 2)
	s.SetMembership([]int{0, 3})
	s.AssignMidpoint(100)
	if s.Interval(0) != AtLeast(100) || s.Interval(3) != AtLeast(100) {
		t.Fatal("top-k filters wrong")
	}
	if s.Interval(1) != AtMost(100) || s.Interval(2) != AtMost(100) {
		t.Fatal("outside filters wrong")
	}
}

func TestAssignMidpointKEqualsN(t *testing.T) {
	s := NewSet(3, 3)
	s.SetMembership([]int{0, 1, 2})
	s.AssignMidpoint(42)
	for i := 0; i < 3; i++ {
		if s.Interval(i) != Full() {
			t.Fatalf("k=n should give full filters, node %d has %v", i, s.Interval(i))
		}
	}
	// Full filters are always valid for k = n.
	if err := s.Validate([]order.Key{1, 2, 3}); err != nil {
		t.Fatalf("k=n validation: %v", err)
	}
}

func TestValidateAcceptsCanonicalAssignment(t *testing.T) {
	s := NewSet(4, 2)
	s.SetMembership([]int{0, 1})
	s.AssignMidpoint(50)
	keys := []order.Key{60, 55, 40, 10}
	if err := s.Validate(keys); err != nil {
		t.Fatalf("canonical assignment should validate: %v", err)
	}
	// Boundary contact on both sides is allowed (Lemma 2.2 permits a
	// single common point).
	keys = []order.Key{50, 55, 50, 10}
	if err := s.Validate(keys); err != nil {
		t.Fatalf("boundary contact should validate: %v", err)
	}
}

func TestValidateRejectsContainmentBreak(t *testing.T) {
	s := NewSet(3, 1)
	s.SetMembership([]int{0}) // top: node 0
	s.AssignMidpoint(50)
	if err := s.Validate([]order.Key{40, 30, 20}); err == nil {
		t.Fatal("top-k key below midpoint must fail containment")
	}
	if err := s.Validate([]order.Key{60, 70, 20}); err == nil {
		t.Fatal("outside key above midpoint must fail containment")
	}
}

func TestValidateRejectsSeparationBreak(t *testing.T) {
	s := NewSet(3, 1)
	s.SetMembership([]int{0})
	// Manually cross the bounds: top filter allows going below an outside
	// filter's upper bound.
	s.SetInterval(0, Interval{Lo: 10, Hi: order.PosInf})
	s.SetInterval(1, Interval{Lo: order.NegInf, Hi: 20})
	s.SetInterval(2, Interval{Lo: order.NegInf, Hi: 5})
	err := s.Validate([]order.Key{15, 12, 3})
	if err == nil || !strings.Contains(err.Error(), "separation") {
		t.Fatalf("expected separation error, got %v", err)
	}
}

func TestValidateLengthMismatch(t *testing.T) {
	s := NewSet(3, 1)
	if err := s.Validate([]order.Key{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestValidateMidpointProperty(t *testing.T) {
	// For any keys with a strict gap between the k-th and (k+1)-st largest,
	// assigning the midpoint between them must validate.
	check := func(raw [6]int16, kRaw uint8) bool {
		k := int(kRaw)%5 + 1 // 1..5 with n = 6
		// Make keys distinct by composing with index.
		keys := make([]order.Key, 6)
		for i, v := range raw {
			keys[i] = order.Key(int64(v)*8 + int64(i))
		}
		// Rank nodes by key descending.
		ids := []int{0, 1, 2, 3, 4, 5}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if keys[ids[j]] > keys[ids[i]] {
					ids[i], ids[j] = ids[j], ids[i]
				}
			}
		}
		s := NewSet(6, k)
		s.SetMembership(ids[:k])
		var m order.Key
		if k == 6 {
			m = 0
		} else {
			m = order.Midpoint(keys[ids[k]], keys[ids[k-1]])
		}
		s.AssignMidpoint(m)
		return s.Validate(keys) == nil
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalClamp(t *testing.T) {
	root := Interval{Lo: 10, Hi: 100}
	cases := []struct {
		in, want Interval
	}{
		{Interval{Lo: 20, Hi: 50}, Interval{Lo: 20, Hi: 50}},   // already inside
		{Interval{Lo: 0, Hi: 50}, Interval{Lo: 10, Hi: 50}},    // clipped below
		{Interval{Lo: 20, Hi: 500}, Interval{Lo: 20, Hi: 100}}, // clipped above
		{Full(), root}, // fully clipped
	}
	for _, tc := range cases {
		if got := tc.in.Clamp(root); got != tc.want {
			t.Fatalf("%v.Clamp(%v) = %v, want %v", tc.in, root, got, tc.want)
		}
	}
}
