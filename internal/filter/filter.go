// Package filter implements the filter formalism of the paper's §2.2: each
// node is assigned an interval (its filter) such that, as long as every
// node's observation stays inside its interval, the set of top-k positions
// cannot change and no communication is necessary.
//
// Lemma 2.2 characterizes valid filter assignments: every top-k node's
// lower bound must be at or above every non-top-k node's upper bound. The
// Validate function checks exactly that characterization and is used as a
// per-step invariant in the monitor's tests.
package filter

import (
	"fmt"
	"sort"

	"repro/internal/order"
)

// Interval is an inclusive interval [Lo, Hi] over the key domain, with
// order.NegInf / order.PosInf playing the roles of −∞ / +∞.
type Interval struct {
	Lo, Hi order.Key
}

// Full returns the unconstrained interval [−∞, +∞].
func Full() Interval { return Interval{Lo: order.NegInf, Hi: order.PosInf} }

// AtLeast returns [m, +∞], the filter shape the monitor assigns to top-k
// nodes.
func AtLeast(m order.Key) Interval { return Interval{Lo: m, Hi: order.PosInf} }

// AtMost returns [−∞, m], the filter shape for non-top-k nodes.
func AtMost(m order.Key) Interval { return Interval{Lo: order.NegInf, Hi: m} }

// Point returns the degenerate filter [k, k] (used by the point-filter
// ablation baseline, where any change is a violation).
func Point(k order.Key) Interval { return Interval{Lo: k, Hi: k} }

// Band returns the (1±ε) tolerance band around threshold th as an
// interval [WidenLo(th), WidenHi(th)]. In the ε-approximate mode the
// coordinator anchors filters on a band instead of a point midpoint:
// top-k nodes install [Band.Lo, +∞], outsiders [−∞, Band.Hi], so values
// may drift an ε fraction across the threshold before any communication
// happens. At ε = 0 the band collapses to Point(th).
func Band(th order.Key, tol order.Tol) Interval {
	return Interval{Lo: tol.WidenLo(th), Hi: tol.WidenHi(th)}
}

// Clamp returns the intersection of the interval with `within`. The
// hierarchical engine derives its nested per-level bands this way: each
// tighter level's band is clamped inside the installed root band, so the
// ladder B_0 ⊆ B_1 ⊆ … ⊆ [Lo, Hi] is nested by construction whenever
// the level tolerances are monotone (order.Tol.Ladder).
func (iv Interval) Clamp(within Interval) Interval {
	out := iv
	if within.Lo > out.Lo {
		out.Lo = within.Lo
	}
	if within.Hi < out.Hi {
		out.Hi = within.Hi
	}
	return out
}

// Contains reports whether key k lies in the interval.
func (iv Interval) Contains(k order.Key) bool { return iv.Lo <= k && k <= iv.Hi }

// Empty reports whether the interval contains no keys.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Violates reports whether observing key k breaks the filter, together
// with the side that broke: below is true when k < Lo, false when k > Hi.
// When the filter holds, the boolean violation flag is false.
func (iv Interval) Violates(k order.Key) (violated, below bool) {
	switch {
	case k < iv.Lo:
		return true, true
	case k > iv.Hi:
		return true, false
	default:
		return false, false
	}
}

// String renders the interval with ∞ glyphs for the sentinels.
func (iv Interval) String() string {
	lo, hi := "-inf", "+inf"
	if iv.Lo != order.NegInf {
		lo = fmt.Sprintf("%d", iv.Lo)
	}
	if iv.Hi != order.PosInf {
		hi = fmt.Sprintf("%d", iv.Hi)
	}
	return fmt.Sprintf("[%s, %s]", lo, hi)
}

// Set is a filter assignment for n nodes plus the top-k membership the
// assignment encodes. It is the coordinator-side bookkeeping structure.
//
// The membership is kept in two synchronized representations: a per-node
// boolean (for O(1) InTop checks) and a sorted id slice maintained
// incrementally by SetMembership so that Top never has to scan or allocate
// on the hot path.
type Set struct {
	ivs   []Interval
	inTop []bool
	top   []int // current membership, ascending; alias returned by Top
	tmp   []int // scratch for SetMembership (swapped with top)
	gen   uint64
	k     int
}

// NewSet creates a filter set for n nodes with all filters [−∞, +∞] and an
// empty top-k set of nominal size k. It panics unless 1 <= k <= n.
func NewSet(n, k int) *Set {
	if n <= 0 {
		panic("filter: set needs n > 0")
	}
	if k < 1 || k > n {
		panic("filter: set needs 1 <= k <= n")
	}
	s := &Set{
		ivs:   make([]Interval, n),
		inTop: make([]bool, n),
		top:   make([]int, 0, k),
		tmp:   make([]int, 0, k),
		k:     k,
	}
	for i := range s.ivs {
		s.ivs[i] = Full()
	}
	return s
}

// N returns the number of nodes.
func (s *Set) N() int { return len(s.ivs) }

// K returns the nominal top-k size.
func (s *Set) K() int { return s.k }

// Interval returns node id's current filter.
func (s *Set) Interval(id int) Interval { return s.ivs[id] }

// SetInterval assigns node id's filter.
func (s *Set) SetInterval(id int, iv Interval) {
	if iv.Empty() {
		panic("filter: assigning empty interval")
	}
	s.ivs[id] = iv
}

// InTop reports whether node id is recorded as a top-k member.
func (s *Set) InTop(id int) bool { return s.inTop[id] }

// SetMembership replaces the top-k membership with exactly the ids in top
// (in any order). It panics if len(top) != k, an id repeats, or an id is
// out of range. The input slice is not retained. The set's generation
// counter advances only when the membership actually changes, so callers
// can detect top-k changes without copying or comparing id slices.
func (s *Set) SetMembership(top []int) {
	if len(top) != s.k {
		panic(fmt.Sprintf("filter: membership size %d, want k=%d", len(top), s.k))
	}
	s.tmp = append(s.tmp[:0], top...)
	sort.Ints(s.tmp)
	for i, id := range s.tmp {
		if id < 0 || id >= len(s.inTop) {
			panic("filter: membership id out of range")
		}
		if i > 0 && id == s.tmp[i-1] {
			panic("filter: duplicate membership id")
		}
	}
	if intsEqual(s.tmp, s.top) {
		return // unchanged; inTop flags and generation stay as they are
	}
	for _, id := range s.top {
		s.inTop[id] = false
	}
	for _, id := range s.tmp {
		s.inTop[id] = true
	}
	s.top, s.tmp = s.tmp, s.top
	s.gen++
}

// Top returns the current top-k ids in ascending order. The returned slice
// is a read-only view owned by the set and is invalidated by the next
// SetMembership call; use AppendTop for a copy that survives.
func (s *Set) Top() []int { return s.top }

// AppendTop appends the current top-k ids (ascending) to dst and returns
// the extended slice. With a dst of capacity >= K it performs no
// allocation.
func (s *Set) AppendTop(dst []int) []int { return append(dst, s.top...) }

// Generation returns a counter that advances exactly when SetMembership
// installs a membership different from the previous one. A fresh set
// starts at generation 0 with an empty membership.
func (s *Set) Generation() uint64 { return s.gen }

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AssignMidpoint installs the canonical assignment of Algorithm 1 around
// midpoint m: [m, +∞] for current top-k members, [−∞, m] for the rest.
// With k == n there is no outside node, so every filter becomes [−∞, +∞]
// and the monitor never communicates again — the degenerate case discussed
// in DESIGN.md.
func (s *Set) AssignMidpoint(m order.Key) { s.AssignBand(m, m) }

// AssignBand is the ε-approximate generalization of AssignMidpoint: it
// installs [lo, +∞] for current top-k members and [−∞, hi] for the rest,
// where [lo, hi] is a tolerance band (see Band) around the separating
// threshold. With k == n every filter becomes [−∞, +∞] as in the exact
// assignment.
func (s *Set) AssignBand(lo, hi order.Key) {
	if s.k == len(s.ivs) {
		for i := range s.ivs {
			s.ivs[i] = Full()
		}
		return
	}
	for i := range s.ivs {
		if s.inTop[i] {
			s.ivs[i] = AtLeast(lo)
		} else {
			s.ivs[i] = AtMost(hi)
		}
	}
}

// Validate checks the Lemma 2.2 characterization against the given current
// keys: (1) every key lies in its node's filter, and (2) the smallest lower
// bound among top-k filters is at least the largest upper bound among
// non-top-k filters. It returns a descriptive error on the first violation
// found, or nil if the assignment is a valid set of filters.
func (s *Set) Validate(keys []order.Key) error {
	if len(keys) != len(s.ivs) {
		return fmt.Errorf("filter: %d keys for %d nodes", len(keys), len(s.ivs))
	}
	minTopLo := order.PosInf
	maxOutHi := order.NegInf
	for id, iv := range s.ivs {
		if !iv.Contains(keys[id]) {
			return fmt.Errorf("filter: node %d key %d outside filter %s", id, keys[id], iv)
		}
		if s.inTop[id] {
			minTopLo = order.Min(minTopLo, iv.Lo)
		} else {
			maxOutHi = order.Max(maxOutHi, iv.Hi)
		}
	}
	// With no outside nodes (k == n) the separation condition is vacuous.
	if maxOutHi != order.NegInf && minTopLo < maxOutHi {
		return fmt.Errorf("filter: separation violated: min top lower bound %d < max outside upper bound %d", minTopLo, maxOutHi)
	}
	return nil
}

// ValidateEps is the ε-tolerant counterpart of Validate: every key must
// still lie in its node's filter, but instead of exact separation the
// membership only needs to be ε-valid — some threshold's (1±ε) band must
// cover both the smallest top-k key and the largest outside key
// (order.Tol.Separated). With a zero tolerance it accepts exactly the
// assignments whose current membership Validate's separation condition
// accepts.
func (s *Set) ValidateEps(keys []order.Key, tol order.Tol) error {
	if len(keys) != len(s.ivs) {
		return fmt.Errorf("filter: %d keys for %d nodes", len(keys), len(s.ivs))
	}
	minTop := order.PosInf
	maxOut := order.NegInf
	for id, iv := range s.ivs {
		if !iv.Contains(keys[id]) {
			return fmt.Errorf("filter: node %d key %d outside filter %s", id, keys[id], iv)
		}
		if s.inTop[id] {
			minTop = order.Min(minTop, keys[id])
		} else {
			maxOut = order.Max(maxOut, keys[id])
		}
	}
	// With no outside nodes (k == n) the condition is vacuous.
	if maxOut != order.NegInf && !tol.Separated(minTop, maxOut) {
		return fmt.Errorf("filter: ε-separation violated: min top key %d vs max outside key %d at eps=%v", minTop, maxOut, tol.Eps())
	}
	return nil
}

// CountTop returns how many nodes are currently marked as top-k members.
// A consistent set always returns exactly K(); the monitor asserts this.
func (s *Set) CountTop() int {
	c := 0
	for _, in := range s.inTop {
		if in {
			c++
		}
	}
	return c
}
