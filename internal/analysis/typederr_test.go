package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestTypedErr(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.TypedErr, "topk")
}
