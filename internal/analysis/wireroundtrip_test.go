package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestWireRoundTrip(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.WireRoundTrip, "wire")
}
