// Package analysistest runs an analyzer over GOPATH-style fixture
// packages and checks its diagnostics against // want annotations, the
// same contract as golang.org/x/tools/go/analysis/analysistest but built
// on the repo's dependency-free analysis framework.
//
// A fixture lives under <srcRoot>/<importpath>/ and annotates each line
// that must produce a diagnostic with a trailing comment:
//
//	rand.Shuffle(n, swap) // want "unseeded randomness"
//
// The quoted string is a regular expression matched against the
// diagnostic message; several want comments may share a line. Directive
// audits (unused or malformed //lint:topk) are ordinary diagnostics and
// are asserted the same way. Every un-matched want and every un-wanted
// diagnostic fails the test.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// wantRe extracts the expectation patterns from a // want comment.
var wantRe = regexp.MustCompile(`want\s+"((?:[^"\\]|\\.)*)"`)

// loaders caches one fixture loader per source root so the standard
// library is type-checked once per test binary, not once per test.
var (
	loadersMu sync.Mutex
	loaders   = make(map[string]*analysis.Loader)
)

func loaderFor(srcRoot string) *analysis.Loader {
	loadersMu.Lock()
	defer loadersMu.Unlock()
	l, ok := loaders[srcRoot]
	if !ok {
		l = analysis.NewFixtureLoader(srcRoot)
		loaders[srcRoot] = l
	}
	return l
}

// Run loads the fixture packages below srcRoot, applies the analyzer
// (with //lint:topk directive processing and auditing), and asserts the
// diagnostics equal the fixtures' want annotations.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := loaderFor(srcRoot)
	var pkgs []*analysis.Package
	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.RunPackages(loader.Fset, pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type want struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("bad want pattern %q: %v", m[1], err)
						}
						key := lineKey(loader.Fset, c.Pos())
						wants[key] = append(wants[key], &want{re: re, raw: m[1]})
					}
				}
			}
		}
	}

	for _, d := range diags {
		key := lineKey(loader.Fset, d.Pos)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			pos := loader.Fset.Position(d.Pos)
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.raw)
			}
		}
	}
}

// lineKey canonicalizes a position to its file:line.
func lineKey(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
