package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Determinism guards the shared protocol core's reproducibility: the
// cross-engine bit-identity suites (and coord's Snapshot/Restore
// determinism) only hold if no protocol decision depends on wall clocks,
// unseeded randomness, or Go's randomized map iteration order. Inside
// internal/coord, internal/core, internal/order and internal/filter it
// forbids:
//
//   - reading the clock (time.Now, time.Since, time.Until);
//   - importing math/rand or math/rand/v2 — protocol randomness must come
//     from internal/rng, whose streams are seeded, splittable and part of
//     the snapshot state;
//   - ranging over a map, whose iteration order is deliberately
//     randomized by the runtime and therefore leaks nondeterminism into
//     anything it feeds.
//
// A map iteration whose effect is provably order-independent (pure
// accumulation into an order-insensitive aggregate) may be suppressed
// with //lint:topk determinism <why order cannot leak>.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clocks, unseeded randomness and map-order iteration in the deterministic protocol core",
	Run:  runDeterminism,
}

// deterministicPackages are the protocol-core packages the bit-identity
// suites cover; everything the coordinator machine and node banks compute
// must replay identically from a seed.
var deterministicPackages = []string{"coord", "core", "order", "filter"}

// clockFuncs are the time package's clock reads; timer construction
// (time.NewTimer) is equally forbidden but always reaches one of these.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runDeterminism(pass *Pass) error {
	if !scoped(pass, deterministicPackages...) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in the deterministic core: protocol randomness must come from internal/rng's seeded streams", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(pass.TypesInfo, n); fn != nil &&
					fn.Pkg() != nil && fn.Pkg().Path() == "time" && clockFuncs[fn.Name()] {
					pass.Reportf(n.Pos(), "time.%s in the deterministic core: protocol decisions must not read the wall clock", fn.Name())
				}
			case *ast.RangeStmt:
				if n.X == nil {
					return true
				}
				t := pass.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "range over a map in the deterministic core: iteration order is randomized and leaks into protocol-visible state")
				}
			}
			return true
		})
	}
	return nil
}
