package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestCtxSend(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.CtxSend, "ingest")
}
