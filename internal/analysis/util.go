package analysis

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the static target of a call expression to a
// *types.Func, or nil for dynamic calls (function values, type
// conversions, builtins).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// fromPackage reports whether fn is declared in a package whose base
// import path is name. Matching on the base keeps the analyzers working
// both on the real module packages (repro/internal/comm) and on the
// analysistest fixtures (comm).
func fromPackage(fn *types.Func, name string) bool {
	return fn != nil && fn.Pkg() != nil && pkgBase(fn.Pkg().Path()) == name
}

// scoped reports whether the pass's package is one of the given package
// base names.
func scoped(pass *Pass, names ...string) bool {
	base := pkgBase(pass.Pkg.Path())
	for _, n := range names {
		if base == n {
			return true
		}
	}
	return false
}
