package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestDirectiveAudit pins the suppression contract: malformed and unused
// //lint:topk directives are diagnostics in their own right, so a
// blanket or stale disable can never ride along silently. The analyzer
// choice is irrelevant — the audit runs on every pass.
func TestDirectiveAudit(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.Determinism, "dirs")
}
