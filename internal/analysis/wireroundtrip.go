package analysis

import (
	"go/ast"
	"go/types"
)

// WireRoundTrip guards the wire codec's completeness: when a message
// struct grows a field, both its encoder and its decoder must learn about
// it, or the field is silently dropped on one side of the link and the
// engines diverge without an error (exactly how Assign.Ladder could have
// been lost when PR 8 extended the handshake). For every exported struct
// type in internal/wire that has an encoder (method Append) and a decoder
// (method Decode on the pointer, or a package function Decode<Type>), the
// analyzer requires every exported field to be referenced — as a selector
// or a composite-literal key — inside both bodies.
//
// A field that is deliberately one-directional (say, a receive-side cache
// populated outside the codec) is suppressed at its declaration with
// //lint:topk wireroundtrip <why the codec may skip it>.
var WireRoundTrip = &Analyzer{
	Name: "wireroundtrip",
	Doc:  "every exported field of a wire message must be referenced by both its encoder and its decoder",
	Run:  runWireRoundTrip,
}

func runWireRoundTrip(pass *Pass) error {
	if !scoped(pass, "wire") {
		return nil
	}

	encoders := make(map[*types.TypeName]*ast.FuncDecl)
	decoders := make(map[*types.TypeName]*ast.FuncDecl)
	structs := make(map[*types.TypeName]*ast.StructType)

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
						structs[tn] = st
					}
				}
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				switch {
				case d.Recv != nil && d.Name.Name == "Append":
					if tn := receiverTypeName(pass, d); tn != nil {
						encoders[tn] = d
					}
				case d.Recv != nil && d.Name.Name == "Decode":
					if tn := receiverTypeName(pass, d); tn != nil {
						decoders[tn] = d
					}
				}
			}
		}
	}
	// Package-function decoders: func Decode<Type>(...) pairing by name.
	byName := make(map[string]*types.TypeName)
	for tn := range structs {
		byName["Decode"+tn.Name()] = tn
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil {
				continue
			}
			if tn, ok := byName[fd.Name.Name]; ok {
				decoders[tn] = fd
			}
		}
	}

	for tn, st := range structs {
		enc, decl := encoders[tn], decoders[tn]
		if enc == nil || decl == nil {
			continue // not a self-codec message type (e.g. wire.LevelIO)
		}
		encRefs := referencedFields(pass, enc)
		decRefs := referencedFields(pass, decl)
		for _, field := range st.Fields.List {
			for _, name := range field.Names {
				if !name.IsExported() {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				if !encRefs[obj] {
					pass.Reportf(name.Pos(), "wire.%s.%s is never referenced by encoder %s.Append: the field is silently dropped on send", tn.Name(), name.Name, tn.Name())
				}
				if !decRefs[obj] {
					pass.Reportf(name.Pos(), "wire.%s.%s is never referenced by decoder %s: the field is silently dropped on receive", tn.Name(), name.Name, decl.Name.Name)
				}
			}
		}
	}
	return nil
}

// receiverTypeName resolves a method's receiver to its type name,
// unwrapping one level of pointer.
func receiverTypeName(pass *Pass, fd *ast.FuncDecl) *types.TypeName {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	t := pass.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// referencedFields collects every struct-field object the function body
// mentions, through selectors (m.Lo) and composite-literal keys
// (Assign{Lo: x}) alike — both appear in Uses.
func referencedFields(pass *Pass, fd *ast.FuncDecl) map[*types.Var]bool {
	refs := make(map[*types.Var]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && v.IsField() {
			refs[v] = true
		}
		return true
	})
	return refs
}
