package analysis

import (
	"go/ast"
	"go/types"
)

// ChargedSend guards Theorem 4.2's bit accounting: the paper's
// communication bounds are claims about *counted* messages, so every
// transport frame an engine emits must be visible to a comm ledger —
// either charged directly next to the send (the shardrun overhead
// pattern, counter.RecordSized beside link.Send) or emitted from a
// charged context: a function that drives the coord package, whose
// Machine/Nodes own the model ledger and have already charged the message
// the frame carries (the netrun pattern).
//
// Concretely: inside internal/netrun and internal/shardrun, a call to a
// transport-package Send must live in a function that — directly or
// through same-package helpers it calls — records to a comm ledger
// (Record/RecordSized) or calls into the coord package. The serve loops
// qualify through their respond helpers, which drive the node banks; a
// function that reaches neither is emitting bytes no ledger can see.
//
// transport.Flush is deliberately not checked: it releases bytes a
// checked Send already buffered and never introduces new payload.
//
// The audited exceptions, suppressed line-by-line with //lint:topk
// chargedsend <reason>, fall into three classes: pure transmit wrappers
// whose callers charge via machine effects (netrun send/sendCmd), control
// frames outside the model (Shutdown on teardown), and the StatsPoll
// diagnostics exchange, which is uncharged by design so polling cannot
// perturb the ledgers it reports.
var ChargedSend = &Analyzer{
	Name: "chargedsend",
	Doc:  "every engine transport send must be charged to a comm ledger or replay a machine-charged effect",
	Run:  runChargedSend,
}

func runChargedSend(pass *Pass) error {
	if !scoped(pass, "netrun", "shardrun") {
		return nil
	}

	type funcInfo struct {
		decl    *ast.FuncDecl
		sends   []*ast.CallExpr
		charges bool
		callees []*types.Func
	}
	infos := make(map[*types.Func]*funcInfo)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass.TypesInfo, call)
				if callee == nil {
					return true
				}
				switch {
				case fromPackage(callee, "transport") && callee.Name() == "Send":
					fi.sends = append(fi.sends, call)
				case fromPackage(callee, "comm") && (callee.Name() == "Record" || callee.Name() == "RecordSized"):
					fi.charges = true
				case fromPackage(callee, "coord"):
					// Driving the machine or a node bank: the ledger
					// owner charges the model messages these frames
					// carry.
					fi.charges = true
				case callee.Pkg() == pass.Pkg:
					fi.callees = append(fi.callees, callee)
				}
				return true
			})
			infos[fn] = fi
		}
	}

	// Propagate the charged property through same-package calls to a
	// fixed point: a serve loop that charges via its respond helper is a
	// charged context for the replies it ships.
	for changed := true; changed; {
		changed = false
		for _, fi := range infos {
			if fi.charges {
				continue
			}
			for _, callee := range fi.callees {
				if ci := infos[callee]; ci != nil && ci.charges {
					fi.charges = true
					changed = true
					break
				}
			}
		}
	}

	for _, fi := range infos {
		if fi.charges {
			continue
		}
		for _, call := range fi.sends {
			pass.Reportf(call.Pos(), "transport send in %s is not visible to any comm ledger: charge it (comm.Record/RecordSized) or drive it from the coord machine; uncounted bytes break the paper's bit accounting", fi.decl.Name.Name)
		}
	}
	return nil
}
