package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestChargedSend(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.ChargedSend, "netrun")
}
