// Package other proves the determinism analyzer is scoped: the same
// constructs that fire inside the protocol core are legal here.
package other

import "time"

// Stamp reads the wall clock; fine outside the deterministic core.
func Stamp() int64 { return time.Now().UnixNano() }

// Sum ranges over a map; fine outside the deterministic core.
func Sum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
