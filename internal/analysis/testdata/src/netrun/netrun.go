// Package netrun is the chargedsend analyzer's fixture: every
// transport.Link.Send must live in a function that — directly or through
// same-package helpers — records to a comm ledger or drives the coord
// machine.
package netrun

import (
	"comm"
	"coord"
	"transport"
)

// uncharged emits a frame no ledger can see.
func uncharged(l transport.Link) {
	_ = l.Send(nil) // want "not visible to any comm ledger"
}

// flushOnly only releases already-counted bytes; Flush is not checked.
func flushOnly(l transport.Link) {
	_ = transport.Flush(l)
}

// charged records the frame beside the send, the shardrun overhead
// pattern.
func charged(l transport.Link, c *comm.Counter) error {
	if err := l.Send(nil); err != nil {
		return err
	}
	c.RecordSized(0, 1, 1)
	return nil
}

// driven ships a frame from a charged context: the coord machine it
// steps owns the model ledger.
func driven(l transport.Link, m *coord.Machine) error {
	m.BeginStep()
	return l.Send(nil)
}

// viaHelper charges transitively through a same-package helper.
func viaHelper(l transport.Link, c *comm.Counter) error {
	charge(c)
	return l.Send(nil)
}

func charge(c *comm.Counter) { c.Record(0, 1) }

// wrapper is the audited-exception fixture: a pure transmit wrapper
// whose callers have already charged the frame.
func wrapper(l transport.Link, frame []byte) error {
	//lint:topk chargedsend pure transmit wrapper; callers charge via machine effects (fixture)
	return l.Send(frame)
}
