// Package transport is a minimal stand-in for the repo's transport
// layer, providing the Send surface the chargedsend analyzer watches.
package transport

// Link is one directed message channel.
type Link interface {
	Send(p []byte) error
	Recv() ([]byte, error)
	Close() error
}

// Flush releases buffered frames; the bytes were counted when sent, so
// chargedsend deliberately ignores it.
func Flush(l Link) error { return nil }
