// Package wire is the wireroundtrip analyzer's fixture: every exported
// field of a codec-bearing message struct must be referenced by both its
// Append encoder and its Decode decoder.
package wire

// Msg is the failing fixture: B is encoded but never decoded, C is
// decoded but never encoded.
type Msg struct {
	A int
	B int // want "never referenced by decoder"
	C int // want "never referenced by encoder"
}

// Append encodes A and B, dropping C.
func (m Msg) Append(dst []byte) []byte {
	return append(dst, byte(m.A), byte(m.B))
}

// DecodeMsg decodes A and C, dropping B.
func DecodeMsg(p []byte) (Msg, error) {
	var m Msg
	m.A = int(p[0])
	m.C = int(p[1])
	return m, nil
}

// Pair round-trips fully via a pointer-receiver decoder.
type Pair struct {
	Lo int
	Hi int
}

// Append encodes both fields.
func (m Pair) Append(dst []byte) []byte {
	return append(dst, byte(m.Lo), byte(m.Hi))
}

// Decode fills both fields.
func (m *Pair) Decode(p []byte) error {
	m.Lo = int(p[0])
	m.Hi = int(p[1])
	return nil
}

// Cache has a deliberately one-directional field, suppressed in place.
type Cache struct {
	Key int
	//lint:topk wireroundtrip receive-side scratch populated outside the codec (fixture)
	Scratch int
}

// Append encodes only Key.
func (m Cache) Append(dst []byte) []byte { return append(dst, byte(m.Key)) }

// Decode fills only Key.
func (m *Cache) Decode(p []byte) error {
	m.Key = int(p[0])
	return nil
}

// Plain carries no codec and is ignored entirely.
type Plain struct{ X int }
