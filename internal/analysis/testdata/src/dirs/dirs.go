// Package dirs exercises the //lint:topk directive audit: malformed or
// unused suppressions are findings themselves, reported under the
// topkdirective pseudo-analyzer and never suppressible.
package dirs

//lint:topk // want "missing analyzer name"
var A = 1

//lint:topk nosuch because reasons // want "unknown analyzer nosuch"
var B = 2

//lint:topk determinism // want "needs a reason"
var C = 3

//lint:topk determinism a perfectly documented reason with nothing to suppress // want "unused"
var D = 4
