// Package coord is the determinism analyzer's failing fixture: the
// analyzer scopes on the package base name, so this stands in for the
// deterministic protocol core. It also doubles as the chargedsend
// fixture's coordinator-machine dependency (see ../netrun).
package coord

import (
	"math/rand" // want "protocol randomness must come from internal/rng"
	"time"
)

// Machine mimics the coordinator state machine the chargedsend fixture
// drives adjacent to its sends.
type Machine struct{ steps int }

// BeginStep advances the machine; calling it counts as "driving the
// coordinator" for the chargedsend analyzer.
func (m *Machine) BeginStep() { m.steps++ }

func stamp() int64 {
	return time.Now().UnixNano() // want "must not read the wall clock"
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want "must not read the wall clock"
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

func sum(m map[int]int) int {
	total := 0
	for _, v := range m { // want "range over a map"
		total += v
	}
	return total
}

func sumOrderIndependent(m map[int]int) int {
	total := 0
	//lint:topk determinism pure accumulation into a commutative sum; iteration order cannot leak
	for _, v := range m {
		total += v
	}
	return total
}

func sumSlice(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}
