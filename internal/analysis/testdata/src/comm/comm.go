// Package comm is a minimal stand-in for the repo's communication
// ledgers; its Record/RecordSized calls are what the chargedsend
// analyzer accepts as a charge.
package comm

// Kind tags a ledger entry.
type Kind int

// Counter is a message/byte ledger.
type Counter struct{ msgs, bytes int64 }

// Record charges n messages.
func (c *Counter) Record(k Kind, n int64) { c.msgs += n }

// RecordSized charges n messages totalling bytes.
func (c *Counter) RecordSized(k Kind, n, bytes int64) { c.msgs += n; c.bytes += bytes }
