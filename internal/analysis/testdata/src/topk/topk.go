// Package topk is the typederr analyzer's fixture: error paths reachable
// from exported New* constructors must produce typed *ConfigError values
// or documented sentinels, never bare fmt.Errorf.
package topk

import (
	"errors"
	"fmt"
)

// ErrClosed is a documented sentinel: package-level errors.New is the
// legal form and is never flagged.
var ErrClosed = errors.New("topk: monitor closed")

// ConfigError reports which Config field was rejected and why.
type ConfigError struct{ Field, Reason string }

func (e *ConfigError) Error() string { return "topk: invalid Config." + e.Field + ": " + e.Reason }

// Monitor is the fixture's constructed type.
type Monitor struct{ n int }

// New rejects bad configurations the wrong way.
func New(n int) (*Monitor, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topk: bad node count %d", n) // want "bare fmt.Errorf on a constructor path"
	}
	if n > 1<<20 {
		return nil, errors.New("topk: node count too large") // want "inline errors.New on a constructor path"
	}
	if err := validate(n); err != nil {
		return nil, err
	}
	return &Monitor{n: n}, nil
}

// validate is unexported but reachable from New, so its bare error is
// still a constructor-path leak.
func validate(n int) error {
	if n%2 == 1 {
		return fmt.Errorf("topk: odd node count") // want "bare fmt.Errorf on a constructor path"
	}
	return nil
}

// NewChecked rejects with the typed error, and documents its one
// deliberate exception in place.
func NewChecked(n int) (*Monitor, error) {
	if n <= 0 {
		return nil, &ConfigError{Field: "Nodes", Reason: "must be positive"}
	}
	if n == 7 {
		//lint:topk typederr fixture for a deliberate, documented exception to the constructor contract
		return nil, fmt.Errorf("topk: seven is right out")
	}
	return &Monitor{n: n}, nil
}

// Observe is not a constructor: runtime-path errors are out of scope.
func (m *Monitor) Observe(vals []int64) error {
	if len(vals) != m.n {
		return fmt.Errorf("topk: wrong observation length")
	}
	return nil
}
