// Package ingest is the ctxsend analyzer's fixture: channel operations
// on goroutines launched here must select on a release path, range over
// a closable channel, or carry a non-blocking proof.
package ingest

// Driver mimics the ingestion worker's channel plumbing.
type Driver struct {
	ch   chan int
	done chan struct{}
}

func (d *Driver) badSend() {
	go func() {
		d.ch <- 1 // want "bare channel send in an engine goroutine"
	}()
}

func (d *Driver) badRecv() {
	go func() {
		<-d.ch // want "bare channel receive in an engine goroutine"
	}()
}

// singleCase has a select, but with one clause there is no release path
// to take: it blocks exactly like the bare form.
func (d *Driver) singleCase() {
	go func() {
		select {
		case v := <-d.ch: // want "bare channel receive in an engine goroutine"
			_ = v
		}
	}()
}

func (d *Driver) good() {
	go func() {
		select {
		case d.ch <- 1:
		case <-d.done:
		}
	}()
}

// drain ranges over the channel; close(d.ch) is its release mechanism.
func (d *Driver) drain() {
	go func() {
		for range d.ch {
		}
	}()
}

// suppressed carries the non-blocking argument on the line it protects.
func (d *Driver) suppressed() {
	go func() {
		//lint:topk ctxsend capacity-1 channel under an owed-reply discipline; a slot is always free (fixture)
		d.ch <- 2
	}()
}

// worker is checked because named() launches it with go.
func worker(ch chan int) {
	ch <- 3 // want "bare channel send in an engine goroutine"
}

func (d *Driver) named() {
	go worker(d.ch)
}

// synchronous is never launched with go: its bare send is out of scope.
func (d *Driver) synchronous() {
	d.ch <- 4
}
