package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive is one parsed //lint:topk suppression.
type directive struct {
	pos      token.Pos
	file     string
	line     int
	analyzer string
	reason   string
	used     bool
	bad      string // non-empty when malformed; the diagnostic message
}

// collectDirectives parses every //lint:topk directive in the package.
// known is the set of analyzer names a directive may legally target.
func collectDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) []*directive {
	var out []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:topk")
				if !ok {
					continue
				}
				// Strip a trailing "// want ..." expectation so the
				// analysistest fixtures can annotate the directive line
				// itself without the marker swallowing the annotation.
				text, _, _ = strings.Cut(text, "// want")
				pos := fset.Position(c.Pos())
				d := &directive{pos: c.Pos(), file: pos.Filename, line: pos.Line}
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					d.bad = "malformed //lint:topk directive: missing analyzer name and reason"
				case !known[fields[0]]:
					d.bad = "//lint:topk names unknown analyzer " + fields[0] + "; see cmd/topklint for the inventory"
				case len(fields) == 1:
					d.analyzer = fields[0]
					d.bad = "//lint:topk " + fields[0] + " needs a reason: every suppression documents why the invariant is intentionally waived here"
				default:
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applyDirectives filters raw diagnostics through the suppressions. A
// directive at line L suppresses matching diagnostics on L (end-of-line
// form) or, if L has none, on L+1 (comment-above form); it is marked used
// only when it actually suppressed something.
func applyDirectives(fset *token.FileSet, raw []Diagnostic, dirs []*directive) []Diagnostic {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	index := make(map[key][]*directive)
	for _, d := range dirs {
		if d.bad != "" {
			continue
		}
		index[key{d.file, d.line, d.analyzer}] = append(index[key{d.file, d.line, d.analyzer}], d)
		index[key{d.file, d.line + 1, d.analyzer}] = append(index[key{d.file, d.line + 1, d.analyzer}], d)
	}
	var out []Diagnostic
	for _, diag := range raw {
		pos := fset.Position(diag.Pos)
		if ds := index[key{pos.Filename, pos.Line, diag.Analyzer}]; len(ds) > 0 {
			for _, d := range ds {
				d.used = true
			}
			continue
		}
		out = append(out, diag)
	}
	return out
}
