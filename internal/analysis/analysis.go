// Package analysis is the repo's static-analysis suite: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus a package loader built on
// go/parser and go/types, so the suite runs with nothing but the standard
// library. The container this repo grows in has no module proxy access,
// so vendoring x/tools is not an option; the subset implemented here is
// exactly what the five topklint analyzers need, with the same shape as
// the upstream API so a future migration is mechanical.
//
// The suite machine-enforces the protocol invariants the paper's bounds
// depend on — see DESIGN.md "Enforced invariants" for the inventory and
// cmd/topklint for the multichecker binary that runs on every PR.
//
// # Suppressions
//
// An intentional exception is annotated at the offending line (or the
// full-line comment directly above it) with a checked directive:
//
//	//lint:topk <analyzer> <reason>
//
// Directives are line-scoped and audited: a directive that names an
// unknown analyzer, omits its reason, or suppresses nothing is itself a
// diagnostic, so stale or blanket disables cannot accumulate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one single-purpose invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:topk
	// directives. Lower-case, no spaces.
	Name string
	// Doc states the invariant the analyzer guards and why.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when untracked.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// DirectiveAnalyzer is the pseudo-analyzer name under which malformed and
// unused //lint:topk directives are reported. Diagnostics from it are
// never suppressible — a broken suppression must be fixed, not silenced.
const DirectiveAnalyzer = "topkdirective"

// Suite returns the repo's analyzer inventory, the five checks ISSUE 9
// specifies, in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{
		Determinism,
		ChargedSend,
		TypedErr,
		CtxSend,
		WireRoundTrip,
	}
}

// RunPackages runs every analyzer over every package, applies //lint:topk
// suppressions, audits the directives themselves, and returns the
// surviving diagnostics sorted by position.
func RunPackages(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		dirs := collectDirectives(fset, pkg.Files, known)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    func(d Diagnostic) { raw = append(raw, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		out = append(out, applyDirectives(fset, raw, dirs)...)
		for _, d := range dirs {
			if d.bad != "" {
				out = append(out, Diagnostic{Pos: d.pos, Analyzer: DirectiveAnalyzer, Message: d.bad})
			} else if !d.used {
				out = append(out, Diagnostic{
					Pos:      d.pos,
					Analyzer: DirectiveAnalyzer,
					Message:  fmt.Sprintf("unused //lint:topk %s suppression: no %[1]s diagnostic on this or the next line; delete it", d.analyzer),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// pkgBase returns the last element of an import path: the name the
// analyzers scope on, so the real module packages (repro/internal/coord)
// and the test fixtures (coord) are treated alike.
func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
