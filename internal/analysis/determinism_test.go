package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.Determinism, "coord", "other")
}
