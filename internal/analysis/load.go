package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path ("repro/internal/coord" for
	// module packages, "coord" for fixture packages).
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages without the go/packages
// machinery: module-internal (or fixture-internal) imports are resolved
// to directories and loaded recursively, everything else is delegated to
// the standard library's source importer, which type-checks GOROOT
// sources directly and therefore needs no pre-built export data and no
// network. Loaders are not safe for concurrent use.
type Loader struct {
	Fset *token.FileSet

	// resolve maps an import path to the directory holding its sources,
	// or reports that the path is not load-managed (then the std importer
	// handles it).
	resolve func(path string) (string, bool)

	// rootPath is the import path of the tree root: the module path for
	// module loaders, empty for fixture loaders (which are loaded by
	// explicit path, never by pattern).
	rootPath string

	std  types.ImporterFrom
	pkgs map[string]*Package
	busy map[string]bool // import-cycle detection
}

// NewModuleLoader loads packages of the module rooted at root, whose
// import paths start with the module path declared in root's go.mod.
func NewModuleLoader(root string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := newLoader()
	l.rootPath = modPath
	l.resolve = func(path string) (string, bool) {
		if path == modPath {
			return root, true
		}
		if rest, ok := strings.CutPrefix(path, modPath+"/"); ok {
			return filepath.Join(root, filepath.FromSlash(rest)), true
		}
		return "", false
	}
	return l, nil
}

// NewFixtureLoader loads packages GOPATH-style from srcRoot: import path
// "p/q" resolves to srcRoot/p/q. It is the loader behind the
// analysistest fixtures under testdata/src.
func NewFixtureLoader(srcRoot string) *Loader {
	l := newLoader()
	l.resolve = func(path string) (string, bool) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
		return "", false
	}
	return l
}

func newLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs: make(map[string]*Package),
		busy: make(map[string]bool),
	}
}

// Load loads, parses and type-checks the package with the given managed
// import path (and, recursively, everything it imports).
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir, ok := l.resolve(path)
	if !ok {
		return nil, fmt.Errorf("analysis: import path %q is not inside the loaded tree", path)
	}
	if l.busy[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go sources in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadPatterns expands package patterns relative to root — "./..."
// recursively, "./x/y" as a single package — and loads every match.
// Directories named testdata (analyzer fixtures with deliberate
// violations) and hidden directories are skipped, as is any directory
// without non-test Go sources.
func (l *Loader) LoadPatterns(root string, patterns ...string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec, pat = true, rest
		}
		if pat == "" || pat == "." {
			pat = "."
		}
		base := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !rec {
			dirs[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs[p] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var ordered []string
	for dir := range dirs {
		if hasGoSources(dir) {
			ordered = append(ordered, dir)
		}
	}
	sort.Strings(ordered)

	var pkgs []*Package
	for _, dir := range ordered {
		path, err := l.pathForDir(root, dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// pathForDir inverts resolve for module loaders: dir under root maps back
// to the managed import path.
func (l *Loader) pathForDir(root, dir string) (string, error) {
	if l.rootPath == "" {
		return "", fmt.Errorf("analysis: pattern loading needs a module loader (dir %s)", dir)
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.rootPath, nil
	}
	return l.rootPath + "/" + filepath.ToSlash(rel), nil
}

// hasGoSources reports whether dir holds at least one non-test Go file.
func hasGoSources(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// parseDir parses every non-test Go file in dir with comments attached.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// loaderImporter adapts Loader to types.ImporterFrom: managed paths load
// recursively, everything else falls through to the std source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if _, ok := l.resolve(path); ok {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s", gomod)
}
