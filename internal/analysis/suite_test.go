package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

// TestRepoCleanUnderSuite runs the full analyzer suite over the real
// module, pinning the acceptance criterion that `go run ./cmd/topklint
// ./...` exits clean: zero diagnostics, with every intentional exception
// carried by a used, reasoned //lint:topk directive (an unused one would
// surface here as a topkdirective finding).
func TestRepoCleanUnderSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewModuleLoader(root)
	if err != nil {
		t.Fatalf("creating module loader: %v", err)
	}
	pkgs, err := loader.LoadPatterns(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	// A silent scope regression (load bug dropping packages) would make
	// the zero-diagnostic assertion vacuous; pin a floor.
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages; ./... expansion lost coverage", len(pkgs))
	}
	diags, err := analysis.RunPackages(loader.Fset, pkgs, analysis.Suite())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		rel, rerr := filepath.Rel(root, pos.Filename)
		if rerr != nil {
			rel = pos.Filename
		}
		t.Errorf("%s:%d:%d: %s: %s", rel, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
}
