package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// TypedErr guards the public constructor contract: topk.New and
// topk.NewOrdered document that a rejected configuration surfaces as a
// typed *ConfigError naming the offending field (so callers can
// errors.As on it), never as an anonymous fmt.Errorf string. The
// analyzer computes the set of package functions reachable from the
// exported New* constructors — and from Restore, whose contract promises
// typed *ConfigError / *RestoreError rejections and documented sentinels
// the same way — through intra-package calls and flags every fmt.Errorf
// and inline errors.New inside it — on a constructor path those produce
// exactly the untyped rejections the contract rules out.
//
// Package-level sentinels (var ErrX = errors.New(...)) are outside any
// function body and therefore never flagged; they are the "documented
// sentinel" half of the contract.
var TypedErr = &Analyzer{
	Name: "typederr",
	Doc:  "constructor/config paths in topk must reject with *ConfigError or a documented sentinel, never bare fmt.Errorf",
	Run:  runTypedErr,
}

func runTypedErr(pass *Pass) error {
	if !scoped(pass, "topk") {
		return nil
	}

	// Map every package function/method object to its declaration.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	// Intra-package call edges, then reachability from the New* roots.
	reach := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if reach[fn] {
			return
		}
		reach[fn] = true
		fd := decls[fn]
		if fd == nil || fd.Body == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := calleeFunc(pass.TypesInfo, call); callee != nil {
					if _, local := decls[callee]; local {
						visit(callee)
					}
				}
			}
			return true
		})
	}
	for fn, fd := range decls {
		if fd.Recv == nil && fn.Exported() && (strings.HasPrefix(fn.Name(), "New") || fn.Name() == "Restore") {
			visit(fn)
		}
	}

	for fn := range reach {
		fd := decls[fn]
		if fd == nil || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			switch {
			case callee.Pkg().Path() == "fmt" && callee.Name() == "Errorf":
				pass.Reportf(call.Pos(), "bare fmt.Errorf on a constructor path (%s is reachable from an exported New* or Restore): reject with a typed *ConfigError or a documented sentinel", fn.Name())
			case callee.Pkg().Path() == "errors" && callee.Name() == "New":
				pass.Reportf(call.Pos(), "inline errors.New on a constructor path (%s is reachable from an exported New* or Restore): reject with a typed *ConfigError or a package-level documented sentinel", fn.Name())
			}
			return true
		})
	}
	return nil
}
