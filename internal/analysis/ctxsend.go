package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxSend guards the chaos suites' "never hang" invariant statically: an
// engine or ingestion goroutine that performs a bare, unguarded channel
// operation can block forever once its peer dies, turning a clean
// fail-stop into a leaked goroutine (or a deadlocked Close). Inside
// internal/netrun, internal/shardrun, internal/ingest and
// internal/transport, every channel send or receive executed on a
// goroutine launched with `go` must be either
//
//   - a case of a select with at least two clauses (one of them a
//     done/ctx/stop release path or a default), or
//   - a `for range ch` receive, whose release mechanism is close(ch).
//
// A bare operation that is provably non-blocking — a send on a buffered
// channel whose capacity an owed-reply discipline can never exceed, like
// the engines' reader-goroutine result channels — is suppressed with
// //lint:topk ctxsend <the non-blocking argument>, which keeps the proof
// obligation attached to the line it protects.
//
// The concurrent in-process runtime (internal/runtime) is deliberately
// out of scope: its sharded command/reply channels follow a bounded
// lockstep handshake with no remote failure mode, pinned by the
// equivalence and race suites.
var CtxSend = &Analyzer{
	Name: "ctxsend",
	Doc:  "no bare channel operations in engine/ingest goroutines without a select on a done/ctx release path",
	Run:  runCtxSend,
}

func runCtxSend(pass *Pass) error {
	if !scoped(pass, "netrun", "shardrun", "ingest", "transport") {
		return nil
	}
	analyzed := make(map[*ast.FuncDecl]bool)
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				checkGoroutineBody(pass, fun.Body)
			default:
				if fn := calleeFunc(pass.TypesInfo, g.Call); fn != nil {
					if fd := decls[fn]; fd != nil && fd.Body != nil && !analyzed[fd] {
						analyzed[fd] = true
						checkGoroutineBody(pass, fd.Body)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkGoroutineBody flags unguarded channel operations in one goroutine
// body. Nested go statements are skipped — each is the root of its own
// goroutine and is checked from its own launch site.
func checkGoroutineBody(pass *Pass, body *ast.BlockStmt) {
	// Bless the comm statements of qualifying selects: a select with a
	// second clause always has a release path to take.
	blessed := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok || len(sel.Body.List) < 2 {
			return true
		}
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				blessed[comm] = true
			case *ast.ExprStmt:
				blessed[ast.Unparen(comm.X)] = true
			case *ast.AssignStmt:
				for _, rhs := range comm.Rhs {
					blessed[ast.Unparen(rhs)] = true
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // its own goroutine, checked at its launch site
		case *ast.SendStmt:
			if !blessed[n] {
				pass.Reportf(n.Pos(), "bare channel send in an engine goroutine can hang forever on a dead peer: select on a done/ctx release path, or suppress with the non-blocking argument")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !blessed[n] {
				pass.Reportf(n.Pos(), "bare channel receive in an engine goroutine can hang forever on a dead peer: select on a done/ctx release path, or suppress with the non-blocking argument")
			}
		}
		return true
	})
}
