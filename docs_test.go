package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// requiredDocs are the architecture documents doc.go and the packages
// refer to; the repo must never regress to promising them without
// shipping them.
var requiredDocs = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md", "CHANGES.md", "PAPER.md"}

func TestDocsExist(t *testing.T) {
	for _, name := range requiredDocs {
		st, err := os.Stat(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if st.Size() < 200 {
			t.Errorf("%s: suspiciously small (%d bytes)", name, st.Size())
		}
	}
}

// mdLink matches inline markdown links [text](target). Good enough for
// the plain links these docs use (no reference-style links, no titles).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestNoDeadIntraRepoLinks walks every markdown file in the repository
// and checks that relative link targets exist on disk. External links
// and pure fragments are skipped; a fragment on a relative link is
// checked for the file part only.
func TestNoDeadIntraRepoLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) < len(requiredDocs) {
		t.Fatalf("found only %d markdown files: %v", len(mdFiles), mdFiles)
	}
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: dead intra-repo link %q (%v)", md, m[1], err)
			}
		}
	}
}

// TestDocGoReferencesResolve keeps the package documentation honest: any
// ALL-CAPS .md file a doc.go mentions must exist at the repo root.
func TestDocGoReferencesResolve(t *testing.T) {
	docRef := regexp.MustCompile(`\b([A-Z][A-Z0-9_]*\.md)\b`)
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range docRef.FindAllStringSubmatch(string(data), -1) {
			if _, statErr := os.Stat(m[1]); statErr != nil {
				t.Errorf("%s references %s, which does not exist at the repo root", path, m[1])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
