// Adversarial: the worst-case input from the paper's §2.1 — the identity
// of the maximum changes every single step, so no algorithm can avoid
// communicating continuously. This example shows that the filter monitor
// degrades gracefully: its per-step cost stays within a small factor of
// recomputing from scratch, which the paper shows is near-optimal here.
//
// Run with:
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"log"

	"repro/topk"
)

const (
	nNodes = 32
	steps  = 1000
)

func main() {
	// Phase 1: rotating maximum — the adversarial input.
	rotCost := run("rotating maximum (adversarial)", rotation)

	// Phase 2: the same number of steps with a stable leader — the
	// benign regime the filters are designed for.
	calmCost := run("stable leader (benign)", calm)

	fmt.Printf("\nadversarial / benign cost ratio: %.0fx\n", float64(rotCost)/float64(calmCost))
	fmt.Println("the gap is the whole point of competitive analysis: filters win exactly")
	fmt.Println("when the input is compressible, and never lose more than the")
	fmt.Println("O((log ∆ + k)·log n) factor the paper proves")
}

func run(name string, gen func(t int, vals []int64)) int64 {
	mon, err := topk.New(topk.Config{Nodes: nNodes, K: 1, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	vals := make([]int64, nNodes)
	for t := 0; t < steps; t++ {
		gen(t, vals)
		if _, err := mon.Observe(vals); err != nil {
			log.Fatal(err)
		}
	}
	c := mon.Counts()
	st := mon.Stats()
	fmt.Printf("%-32s %6d msgs (%.2f/step), %d resets, top changed %d times\n",
		name+":", c.Total(), float64(c.Total())/steps, st.Resets, st.TopChanges)
	return c.Total()
}

// rotation puts the peak on a different node every step.
func rotation(t int, vals []int64) {
	for i := range vals {
		vals[i] = 100
	}
	vals[t%len(vals)] = 10_000
}

// calm keeps node 0 on top with gentle deterministic wiggle elsewhere.
func calm(t int, vals []int64) {
	for i := range vals {
		vals[i] = 100 + int64((t*(i+3))%7)
	}
	vals[0] = 10_000 + int64(t%5)
}
