// Netpair: the networked engine through the public API. A loopback
// Transport hosts the monitored nodes on four in-process peers that speak
// the real wire protocol — the same codec and framing `topkmon -serve` /
// `-join` use across machines — while the coordinator drives a bursty
// workload through it.
//
// Run with:
//
//	go run ./examples/netpair
//
// The point of the demo is the three-line cost summary at the end:
//
//   - model messages — what the paper's Theorem 4.2 counts,
//   - model bytes — those messages under the canonical wire encoding
//     (identical on every engine for the same seed),
//   - transport bytes — what actually crossed the links, control plane
//     (observation delivery, round scheduling, framing) included.
package main

import (
	"fmt"
	"log"

	"repro/topk"
)

const (
	nodes = 64
	k     = 4
	steps = 4000
	peers = 4
)

func main() {
	mon, err := topk.New(topk.Config{
		Nodes:     nodes,
		K:         k,
		Seed:      2026,
		Transport: topk.Loopback(peers),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()

	// A drifting fleet with one periodically surging stream, so the top
	// set actually changes and every protocol phase gets exercised.
	vals := make([]int64, nodes)
	for i := range vals {
		vals[i] = int64(1000 + 10*i)
	}
	changes := 0
	var prev []int
	for t := 0; t < steps; t++ {
		for i := range vals {
			vals[i] += int64((t+i*7)%5 - 2) // gentle drift
		}
		surger := (t / 500) % nodes
		vals[surger] += 40 // the current climber pushes upward

		top, err := mon.Observe(vals)
		if err != nil {
			log.Fatal(err)
		}
		if prev == nil || !equalInts(prev, top) {
			changes++
			prev = mon.AppendTop(prev[:0])
		}
	}

	c, b, ts := mon.Counts(), mon.Bytes(), mon.TransportStats()
	fmt.Printf("%d steps over %d peers, %d top-set changes\n", steps, peers, changes)
	fmt.Printf("model messages:  %8d  (up=%d bcast=%d; %.3f/step)\n",
		c.Total(), c.Up, c.Broadcast, float64(c.Total())/steps)
	fmt.Printf("model bytes:     %8d  (%.1f per message)\n",
		b.Total(), float64(b.Total())/float64(c.Total()))
	fmt.Printf("transport bytes: %8d sent + %d received in %d frames\n",
		ts.SentBytes, ts.RecvBytes, ts.SentFrames+ts.RecvFrames)
	fmt.Printf("naive forwarding would cost %d messages (%.0fx more)\n",
		int64(steps)*nodes, float64(int64(steps)*nodes)/float64(c.Total()))
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
