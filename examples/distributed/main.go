// Distributed: run the monitor on the sharded concurrent engine, where
// every node is a separate goroutine holding only its own state and all
// value information flows through channels — the closest executable
// analogue of the paper's system model.
//
// Run with:
//
//	go run ./examples/distributed
//
// The example drives the sequential engine and the concurrent engine side
// by side with the same seed and verifies, step by step, that reports and
// message counts are identical: the concurrency is an implementation
// dimension, not a semantic one.
package main

import (
	"fmt"
	"log"

	"repro/topk"
)

const (
	nNodes = 24
	topK   = 4
	steps  = 500
	seed   = 12345
)

func main() {
	seq, err := topk.New(topk.Config{Nodes: nNodes, K: topK, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	conc, err := topk.New(topk.Config{Nodes: nNodes, K: topK, Seed: seed, Concurrent: true})
	if err != nil {
		log.Fatal(err)
	}
	defer conc.Close()

	vals := make([]int64, nNodes)
	state := make([]int64, nNodes)
	rng := uint64(987)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := range state {
		state[i] = int64(next() % 100_000)
	}

	mismatches := 0
	for t := 0; t < steps; t++ {
		for i := range state {
			state[i] += int64(next()%201) - 100 // random walk
			vals[i] = state[i]
		}
		a, err1 := seq.Observe(vals)
		b, err2 := conc.Observe(vals)
		if err1 != nil || err2 != nil {
			log.Fatal(err1, err2)
		}
		if !equal(a, b) || seq.Counts() != conc.Counts() {
			mismatches++
		}
	}

	c := conc.Counts()
	fmt.Printf("%d steps over %d node goroutines, k=%d\n", steps, nNodes, topK)
	fmt.Printf("messages: up=%d down=%d broadcast=%d total=%d\n", c.Up, c.Down, c.Broadcast, c.Total())
	fmt.Printf("engine mismatches (reports or counts): %d\n", mismatches)
	if mismatches == 0 {
		fmt.Println("the goroutine engine reproduced the sequential engine bit for bit")
	}
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
