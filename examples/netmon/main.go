// Netmon: track the k most loaded links of a network from per-link byte
// counters — a continuous distributed monitoring task in the style the
// paper's related work (IP network traffic analysis) motivates.
//
// Run with:
//
//	go run ./examples/netmon
//
// 96 links report their 1-second byte rate. Traffic has a heavy-tailed
// base load (a few backbone links dominate persistently), plus flash
// crowds that push an edge link into the top set for a while. The example
// prints the per-phase message breakdown at the end: on this workload most
// communication goes to FILTERRESET executions triggered by flash crowds,
// while quiet periods cost nothing.
package main

import (
	"fmt"
	"log"

	"repro/topk"
)

const (
	nLinks = 96
	topK   = 8
	steps  = 3000
)

func main() {
	mon, err := topk.New(topk.Config{Nodes: nLinks, K: topK, Seed: 31337})
	if err != nil {
		log.Fatal(err)
	}

	net := newNetwork(nLinks, 4242)
	vals := make([]int64, nLinks)
	flashReports := 0
	for t := 0; t < steps; t++ {
		net.tick(vals)
		top, err := mon.Observe(vals)
		if err != nil {
			log.Fatal(err)
		}
		if net.flashLink >= 0 && contains(top, net.flashLink) && !net.flashSeen {
			net.flashSeen = true
			flashReports++
			fmt.Printf("step %4d: flash crowd on link %d entered the top-%d %v\n", t, net.flashLink, topK, top)
		}
	}

	c := mon.Counts()
	p := mon.Phases()
	fmt.Printf("\n%d steps, %d links, k=%d: %d messages (%.2f/step), %d flash crowds detected\n",
		steps, nLinks, topK, c.Total(), float64(c.Total())/steps, flashReports)
	fmt.Println("phase breakdown:")
	fmt.Printf("  violation protocols: %5d\n", p.Violation.Total())
	fmt.Printf("  handler + midpoints: %5d\n", p.Handler.Total())
	fmt.Printf("  filter resets:       %5d\n", p.Reset.Total())
	fmt.Printf("naive forwarding would cost %d messages (%.0fx more)\n",
		steps*nLinks, float64(steps*nLinks)/float64(c.Total()))
}

// network synthesizes link loads: static heavy-tailed base rates, small
// multiplicative jitter, and occasional flash crowds on edge links.
type network struct {
	base      []int64
	rng       uint64
	flashLink int
	flashT    int
	flashSeen bool
}

func newNetwork(n int, seed uint64) *network {
	nw := &network{base: make([]int64, n), rng: seed, flashLink: -1}
	for i := range nw.base {
		// Zipf-ish base rate: link i carries ~ 10GB/rank bytes per tick.
		nw.base[i] = 10_000_000_000 / int64(i+1)
	}
	return nw
}

func (nw *network) next() uint64 {
	nw.rng ^= nw.rng << 13
	nw.rng ^= nw.rng >> 7
	nw.rng ^= nw.rng << 17
	return nw.rng
}

func (nw *network) tick(vals []int64) {
	if nw.flashLink < 0 && nw.next()%500 == 0 {
		// Flash crowd on a quiet edge link (bottom half of the ranking).
		nw.flashLink = len(vals)/2 + int(nw.next()%uint64(len(vals)/2))
		nw.flashT = 80
		nw.flashSeen = false
	}
	if nw.flashT > 0 {
		nw.flashT--
		if nw.flashT == 0 {
			nw.flashLink = -1
		}
	}
	for i := range vals {
		// ±2% multiplicative jitter around the base rate.
		jitter := int64(nw.next()%41) - 20
		vals[i] = nw.base[i] + nw.base[i]*jitter/1000
		if i == nw.flashLink {
			vals[i] += 5_000_000_000 // the flash crowd dwarfs the base rate
		}
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
