// Deltafeed: monitor a large fleet of mostly-idle streams through the
// sparse ingestion path.
//
// Run with:
//
//	go run ./examples/deltafeed
//
// A tick-based feed (market data, sensor fleets, leaderboards) naturally
// arrives as deltas: per step only a handful of the n streams report a new
// value. ObserveDelta ingests exactly those updates — the monitor performs
// O(#changed) work and zero heap allocations on a violation-free step, no
// matter how large n is — while the reports stay exactly as if every
// stream were re-read in full each step.
package main

import (
	"fmt"
	"log"

	"repro/topk"
)

func main() {
	const (
		nodes = 100_000 // fleet size; only a handful change per step
		k     = 5
		steps = 1_000
	)
	mon, err := topk.New(topk.Config{Nodes: nodes, K: k, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// Initialize the fleet once, densely: stream i starts at value i.
	init := make([]int64, nodes)
	for i := range init {
		init[i] = int64(i)
	}
	if _, err := mon.Observe(init); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial top-%d: %v\n", k, mon.Top())

	// From here on, feed only what changed. Buffers are reused: the
	// monitor does not retain them.
	ids := make([]int, 0, 4)
	vals := make([]int64, 0, 4)
	for t := 1; t <= steps; t++ {
		ids, vals = ids[:0], vals[:0]
		// Three deterministic movers per step: a low stream twitches (it
		// stays far below the top band and costs nothing), and every 100th
		// step one stream surges past the leaders.
		low := (t * 7919) % (nodes / 2)
		ids = append(ids, low)
		vals = append(vals, int64(low)+int64(t%13))
		if t%100 == 0 {
			surger := nodes/2 + (t/100)*31%(nodes/2)
			if surger != low {
				ids, vals = orderedAppend(ids, vals, surger, int64(nodes)+int64(t))
			}
		}
		top, err := mon.ObserveDelta(ids, vals)
		if err != nil {
			log.Fatal(err)
		}
		if t%100 == 0 {
			fmt.Printf("t=%4d: top-%d = %v\n", t, k, top)
		}
	}

	c := mon.Counts()
	fmt.Printf("\nafter %d sparse steps over %d streams: %d messages (up=%d, down=%d, broadcast=%d)\n",
		steps, nodes, c.Total(), c.Up, c.Down, c.Broadcast)
	fmt.Printf("dense re-ingestion would have touched %d stream-observations; the delta feed touched ~%d\n",
		steps*nodes, steps*2)
}

// orderedAppend inserts (id, v) keeping ids strictly increasing, as
// ObserveDelta requires.
func orderedAppend(ids []int, vals []int64, id int, v int64) ([]int, []int64) {
	pos := len(ids)
	for pos > 0 && ids[pos-1] > id {
		pos--
	}
	ids = append(ids, 0)
	vals = append(vals, 0)
	copy(ids[pos+1:], ids[pos:])
	copy(vals[pos+1:], vals[pos:])
	ids[pos] = id
	vals[pos] = v
	return ids, vals
}
