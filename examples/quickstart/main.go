// Quickstart: monitor the top-2 of four distributed streams.
//
// Run with:
//
//	go run ./examples/quickstart
//
// The monitor reports the exact top-k set after every observation step and
// tracks how many messages the coordinator model exchanged. Note how the
// small drifts in the middle steps cost nothing: every node's value stays
// inside the filter interval the coordinator assigned, so nobody speaks.
package main

import (
	"fmt"
	"log"

	"repro/topk"
)

func main() {
	mon, err := topk.New(topk.Config{Nodes: 4, K: 2, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	steps := [][]int64{
		{100, 400, 200, 300}, // nodes 1 and 3 lead
		{105, 395, 205, 295}, // drift within filters: zero messages
		{110, 390, 210, 290},
		{108, 388, 208, 292},
		{500, 388, 208, 292}, // node 0 surges to the top
		{502, 385, 210, 290},
	}

	prev := mon.Counts().Total()
	for t, vals := range steps {
		top, err := mon.Observe(vals)
		if err != nil {
			log.Fatal(err)
		}
		cost := mon.Counts().Total() - prev
		prev = mon.Counts().Total()
		fmt.Printf("t=%d values=%v -> top-2 = %v  (+%d msgs)\n", t, vals, top, cost)
	}

	// Keep drifting gently for a while: the steady state is free.
	const drift = 500
	vals := append([]int64(nil), steps[len(steps)-1]...)
	for t := 0; t < drift; t++ {
		for i := range vals {
			vals[i] += int64((t+i)%3 - 1) // tiny deterministic wiggle
		}
		if _, err := mon.Observe(vals); err != nil {
			log.Fatal(err)
		}
	}

	c := mon.Counts()
	total := len(steps) + drift
	fmt.Printf("\nafter %d steps: %d messages (up=%d, down=%d, broadcast=%d)\n",
		total, c.Total(), c.Up, c.Down, c.Broadcast)
	fmt.Printf("naive forwarding would have used %d messages — %.0fx more\n",
		total*4, float64(total*4)/float64(c.Total()))
}
