// Leaderboard: maintain a live, exactly-ordered top-5 of player scores
// with the ordered monitor — the extension the paper sketches as future
// work in §5 (top-k set plus the ranking within it), implemented here by
// combining the main algorithm's k-boundary with neighbor-midpoint
// filters inside the band.
//
// Run with:
//
//	go run ./examples/leaderboard
//
// 200 players carry a rating (points per rolling window) that wanders
// slowly around a per-player skill level; every now and then someone goes
// on a hot streak and climbs the board. Because ratings are mostly
// stable, the coordinator needs very few messages to keep the exact
// ranking current. (Cumulative totals, where the whole field climbs
// forever, would be the algorithm's worst case — absolute filters cannot
// absorb common-mode growth; ratings are the natural fit.)
package main

import (
	"fmt"
	"log"

	"repro/topk"
)

const (
	nPlayers = 200
	boardK   = 5
	steps    = 4000
)

func main() {
	board, err := topk.NewOrdered(topk.Config{Nodes: nPlayers, K: boardK, Seed: 1717})
	if err != nil {
		log.Fatal(err)
	}

	g := &game{rng: 55, skill: make([]int64, nPlayers), drift: make([]int64, nPlayers), streak: -1}
	for i := range g.skill {
		g.skill[i] = int64(g.next()%900000) + 100000 // 100k..1M rating
	}

	vals := make([]int64, nPlayers)
	var last []int
	for t := 0; t < steps; t++ {
		g.tick(vals)
		ranking, err := board.Observe(vals)
		if err != nil {
			log.Fatal(err)
		}
		if changed(last, ranking) {
			fmt.Printf("t=%4d leaderboard: %v\n", t, ranking)
			last = append(last[:0], ranking...)
		}
	}

	c := board.Counts()
	fmt.Printf("\n%d ticks, %d players, exact ordered top-%d at every tick\n", steps, nPlayers, boardK)
	fmt.Printf("messages: %d total (%.2f per tick) vs %d for naive forwarding (%.0fx saving)\n",
		c.Total(), float64(c.Total())/steps, steps*nPlayers, float64(steps*nPlayers)/float64(c.Total()))
}

// game drives slowly wandering ratings with occasional hot streaks.
type game struct {
	rng     uint64
	skill   []int64 // per-player base rating
	drift   []int64 // bounded wander around the base
	streak  int
	streakT int
}

func (g *game) next() uint64 {
	g.rng ^= g.rng << 13
	g.rng ^= g.rng >> 7
	g.rng ^= g.rng << 17
	return g.rng
}

func (g *game) tick(vals []int64) {
	if g.streak < 0 && g.next()%400 == 0 {
		g.streak = int(g.next() % uint64(len(g.skill)))
		g.streakT = 120
	}
	if g.streakT > 0 {
		g.streakT--
		if g.streakT == 0 {
			g.streak = -1
		}
	}
	for i := range g.skill {
		g.drift[i] += int64(g.next()%61) - 30 // ±30 wander per tick
		if g.drift[i] > 5000 {
			g.drift[i] = 5000
		}
		if g.drift[i] < -5000 {
			g.drift[i] = -5000
		}
		vals[i] = g.skill[i] + g.drift[i]
		if i == g.streak {
			vals[i] += 2_000_000 // a hot streak tops the board outright
		}
	}
}

func changed(a, b []int) bool {
	if len(a) != len(b) {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return true
		}
	}
	return false
}
