// Sensors: a temperature-monitoring fleet, the motivating scenario from
// the paper's introduction — "a set of sensors which can communicate
// directly to the coordinator in order to continuously keep track of the
// subset of n locations at which currently the highest k values are
// observed".
//
// Run with:
//
//	go run ./examples/sensors
//
// 48 stations sample temperature (in milli-degrees) every step. Each
// station has its own micro-climate offset, a shared day/night wave moves
// everyone together, and occasionally one station experiences a local heat
// event and must enter the hot set. Because values change slowly relative
// to the gaps between stations, the filter-based monitor stays almost
// silent outside the events.
package main

import (
	"fmt"
	"log"

	"repro/topk"
)

const (
	nStations = 48
	hottestK  = 5
	daySteps  = 480 // steps per simulated day
	days      = 5
)

func main() {
	mon, err := topk.New(topk.Config{Nodes: nStations, K: hottestK, Seed: 2024})
	if err != nil {
		log.Fatal(err)
	}

	fleet := newFleet(nStations, 99)
	steps := days * daySteps
	vals := make([]int64, nStations)

	var lastTop []int
	for t := 0; t < steps; t++ {
		fleet.sample(t, vals)
		top, err := mon.Observe(vals)
		if err != nil {
			log.Fatal(err)
		}
		if changed(lastTop, top) {
			fmt.Printf("step %4d: hottest stations now %v\n", t, top)
			lastTop = append(lastTop[:0], top...)
		}
	}

	c := mon.Counts()
	st := mon.Stats()
	fmt.Printf("\n%d steps, %d stations, k=%d\n", steps, nStations, hottestK)
	fmt.Printf("messages: %d total (%.3f per step) — naive forwarding: %d\n",
		c.Total(), float64(c.Total())/float64(steps), steps*nStations)
	fmt.Printf("saving vs naive: %.0fx\n", float64(steps*nStations)/float64(c.Total()))
	fmt.Printf("filter violations on %d of %d steps; %d full resets; top set changed %d times\n",
		st.ViolationSteps, st.Steps, st.Resets, st.TopChanges)
}

// fleet simulates station temperatures deterministically: a diurnal wave,
// per-station offsets, small jitter, and sporadic heat events.
type fleet struct {
	offsets []int64
	rng     uint64
	event   int // station currently in a heat event, -1 if none
	eventT  int // steps remaining
}

func newFleet(n int, seed uint64) *fleet {
	f := &fleet{offsets: make([]int64, n), rng: seed, event: -1}
	for i := range f.offsets {
		// Micro-climate spread of ±20°C around 15°C, in milli-degrees:
		// valley stations, rooftops, a couple near industrial exhausts.
		f.offsets[i] = 15000 + int64(f.next()%40000) - 20000
	}
	return f
}

// next is a small xorshift generator so the example has no dependencies.
func (f *fleet) next() uint64 {
	f.rng ^= f.rng << 13
	f.rng ^= f.rng >> 7
	f.rng ^= f.rng << 17
	return f.rng
}

func (f *fleet) sample(t int, vals []int64) {
	// Triangular day/night wave with ±0.5°C amplitude. The wave moves every
	// station together; such common-mode drift is the expensive direction
	// for absolute filters (the whole fleet crosses midpoints in lockstep),
	// so keeping it smaller than the station spread matters for cost.
	phase := t % daySteps
	var wave int64
	if phase < daySteps/2 {
		wave = int64(phase)*2000/daySteps - 500
	} else {
		wave = 1500 - int64(phase)*2000/daySteps
	}
	// Start or age a heat event (~once per half day on average).
	if f.event < 0 && f.next()%(daySteps/2) == 0 {
		f.event = int(f.next() % uint64(len(vals)))
		f.eventT = 60
	}
	if f.eventT > 0 {
		f.eventT--
		if f.eventT == 0 {
			f.event = -1
		}
	}
	for i := range vals {
		jitter := int64(f.next()%21) - 10 // ±10 milli-degrees
		vals[i] = f.offsets[i] + wave + jitter
		if i == f.event {
			vals[i] += 30000 // +30°C local heat event (fire, exhaust plume)
		}
	}
}

func changed(a, b []int) bool {
	if len(a) != len(b) {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return true
		}
	}
	return false
}
