package topk

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/netrun"
	"repro/internal/runtime"
	"repro/internal/shardrun"
	"repro/internal/transport"
	"repro/internal/wire"
)

// CheckpointStore persists checkpoint frames by generation number. Save
// must make frame durable before returning — atomically, so a crash
// mid-write leaves either the previous state or the new one, never a
// torn frame a later Load would hand back. Load returns the newest frame
// that passes validation (every frame is CRC-sealed; torn, bit-rotted or
// misfiled frames must be skipped in favor of an older intact one, or
// rejected with an error wrapping ErrCorruptCheckpoint when nothing
// intact remains), or ErrNoCheckpoint when the store has never saved.
//
// FileCheckpoints (write-to-temp, fsync, rename) and MemCheckpoints
// provide ready-made stores; the interface is exported so deployments
// can persist frames in their own substrate (object store, replicated
// log). Implementations need not be safe for concurrent use — the
// monitor serializes its own calls.
type CheckpointStore interface {
	Save(gen uint64, frame []byte) error
	Load() (gen uint64, frame []byte, err error)
}

// Checkpoint configures durable checkpointing (Config.Checkpoint).
//
// A checkpoint captures the coordinator process's execution at an idle
// step boundary: for the in-process engines the machine plus every
// node's key, filter and generator state (restoring is bit-identical —
// same reports, same ledgers, same randomness as a monitor that never
// stopped); for the networked and sharded engines the machine plus the
// coordinator's last-value mirror (the node banks live in the peers and
// are rebuilt through the same reassign/replay/reset cycle peer
// failover uses, so a restored monitor re-converges to oracle-exact
// reports immediately — the protocols are Las Vegas — while the ledgers
// additionally carry the visible recovery cost). Frames are CRC-sealed
// and generation-numbered; a crash during Save is recovered by falling
// back to the previous intact generation, never by restoring a torn
// frame.
type Checkpoint struct {
	// Store receives the frames. Required when Every > 0; with a Store
	// and Every == 0 only manual Monitor.Checkpoint calls persist.
	Store CheckpointStore
	// Every takes an automatic checkpoint after every Every applied
	// steps (in asynchronous mode: applied coalesced batches). 0
	// disables automatic checkpointing. A failed automatic attempt is
	// recorded in CheckpointStats and retried at the next boundary;
	// it never fails the observation call itself.
	Every int
}

// ErrNoCheckpoint is returned (possibly wrapped) by Restore and by
// CheckpointStore.Load when the store holds no checkpoint at all; test
// with errors.Is.
var ErrNoCheckpoint = ckpt.ErrNoCheckpoint

// ErrCorruptCheckpoint is returned (possibly wrapped) when every stored
// frame fails validation — torn writes, bit rot, or a frame filed under
// the wrong generation; test with errors.Is. A store with at least one
// older intact frame falls back to it instead.
var ErrCorruptCheckpoint = ckpt.ErrCorrupt

// errNilStore rejects Restore without a store to load from.
var errNilStore = errors.New("topk: Restore requires a non-nil CheckpointStore")

// RestoreError is the typed error Restore returns when the loaded
// checkpoint cannot be restored under the given configuration — an
// engine/seed/shape mismatch, an undecodable embedded frame, or an
// engine-side rebuild failure. Reason describes the rejection; Err, when
// non-nil, is the underlying cause (Unwrap exposes it to errors.Is).
// Store-level failures (ErrNoCheckpoint, ErrCorruptCheckpoint) pass
// through un-wrapped.
type RestoreError struct {
	Reason string
	Err    error
}

// Error formats the failure as "topk: restore: <Reason>[: <cause>]".
func (e *RestoreError) Error() string {
	if e.Err != nil {
		return "topk: restore: " + e.Reason + ": " + e.Err.Error()
	}
	return "topk: restore: " + e.Reason
}

// Unwrap returns the underlying cause.
func (e *RestoreError) Unwrap() error { return e.Err }

// badRestore builds a typed *RestoreError (fmt.Sprintf, not fmt.Errorf:
// restore paths reject with typed errors only, like constructor paths).
func badRestore(cause error, format string, args ...any) error {
	return &RestoreError{Reason: fmt.Sprintf(format, args...), Err: cause}
}

// FileCheckpoints returns a CheckpointStore persisting each generation
// as its own file under dir (created if missing): frames are written to
// a temporary name, fsynced, and renamed into place, so a crash at any
// byte boundary leaves the previous generations intact. The store
// retains the last few generations and Load falls back across them,
// newest intact first. The returned store is safe for concurrent use.
func FileCheckpoints(dir string) (CheckpointStore, error) {
	return ckpt.NewFile(dir)
}

// MemCheckpoints returns an in-process CheckpointStore with the same
// retention and fallback semantics as FileCheckpoints but no durability
// across processes — the backend for tests and for Restore-from-memory
// hand-offs within one process.
func MemCheckpoints() CheckpointStore {
	return ckpt.NewMem()
}

// CheckpointStats summarizes a monitor's checkpoint activity.
type CheckpointStats struct {
	// Saves counts successfully persisted frames (automatic and manual).
	Saves int64
	// Failures counts attempts that failed — the engine was not at a
	// checkpointable boundary (degraded or terminal) or the store
	// rejected the write. Automatic attempts retry at the next boundary.
	Failures int64
	// LastGen is the generation of the newest persisted frame: the
	// count survives Restore, which resumes numbering from the loaded
	// generation. 0 means no frame was ever persisted.
	LastGen uint64
	// LastErr is the error of the most recent failed attempt, nil once
	// an attempt succeeds again.
	LastErr error
}

// CheckpointStats returns a snapshot of the checkpoint counters. In
// asynchronous mode it is safe concurrently with the background worker.
func (m *Monitor) CheckpointStats() CheckpointStats {
	if m.drv != nil {
		m.engineMu.Lock()
		defer m.engineMu.Unlock()
	}
	return m.ckptStats
}

// validateCheckpoint checks the Checkpoint sub-configuration.
func validateCheckpoint(cfg Config) error {
	if cfg.Checkpoint.Every < 0 {
		return badConfig(cfg, "Checkpoint.Every", "must be >= 0, got %d", cfg.Checkpoint.Every)
	}
	if cfg.Checkpoint.Every > 0 && cfg.Checkpoint.Store == nil {
		return badConfig(cfg, "Checkpoint.Store", "automatic checkpointing (Every=%d) requires a Store", cfg.Checkpoint.Every)
	}
	return nil
}

// engineKind maps a validated configuration to the engine fingerprint a
// checkpoint frame records, so a frame never restores into a different
// engine than the one that took it.
func engineKind(cfg Config) uint8 {
	switch {
	case !cfg.Tree.zero() || cfg.Shards > 0:
		return wire.EngineShard
	case cfg.Transport != nil:
		return wire.EngineNet
	case cfg.Concurrent:
		return wire.EngineConc
	default:
		return wire.EngineSeq
	}
}

// engineName names an engine fingerprint for error messages.
func engineName(kind uint8) string {
	switch kind {
	case wire.EngineSeq:
		return "sequential"
	case wire.EngineConc:
		return "concurrent"
	case wire.EngineNet:
		return "networked"
	case wire.EngineShard:
		return "sharded"
	default:
		return "unknown"
	}
}

// maybeCheckpoint is the automatic-checkpoint hook, called after every
// applied step at an idle engine boundary (synchronous observation calls
// and the asynchronous worker under engineMu). A failure is recorded and
// retried at the next boundary; observation calls never fail because a
// checkpoint did.
func (m *Monitor) maybeCheckpoint() {
	if m.cfg.Checkpoint.Every <= 0 {
		return
	}
	m.ckptApplied++
	if m.ckptApplied < m.cfg.Checkpoint.Every {
		return
	}
	m.ckptApplied = 0
	m.checkpointLocked()
}

// checkpointLocked encodes the current state as generation ckptGen+1 and
// saves it, updating the stats. Callers hold engineMu in asynchronous
// mode.
func (m *Monitor) checkpointLocked() (uint64, error) {
	gen := m.ckptGen + 1
	frame, err := m.encodeCheckpoint(gen)
	if err == nil {
		err = m.cfg.Checkpoint.Store.Save(gen, frame)
	}
	if err != nil {
		m.ckptStats.Failures++
		m.ckptStats.LastErr = err
		return 0, err
	}
	m.ckptGen = gen
	m.ckptStats.Saves++
	m.ckptStats.LastGen = gen
	m.ckptStats.LastErr = nil
	return gen, nil
}

// encodeCheckpoint snapshots the engine into a sealed checkpoint frame.
func (m *Monitor) encodeCheckpoint(gen uint64) ([]byte, error) {
	c := wire.Checkpoint{
		Gen:      gen,
		Seed:     m.cfg.Seed,
		Distinct: m.cfg.DistinctValues,
	}
	switch {
	case m.seq != nil:
		mach, nodes, err := m.seq.Snapshot()
		if err != nil {
			return nil, err
		}
		c.Engine, c.Machine, c.Nodes = wire.EngineSeq, mach, nodes
	case m.conc != nil:
		mach, nodes, err := m.conc.Snapshot()
		if err != nil {
			return nil, err
		}
		c.Engine, c.Machine, c.Nodes = wire.EngineConc, mach, nodes
	case m.net != nil:
		mach, last, err := m.net.Snapshot()
		if err != nil {
			return nil, err
		}
		c.Engine, c.Machine, c.Last = wire.EngineNet, mach, last
	case m.shard != nil:
		mach, last, err := m.shard.Snapshot()
		if err != nil {
			return nil, err
		}
		c.Engine, c.Machine, c.Last = wire.EngineShard, mach, last
	default:
		return nil, errors.New("topk: monitor is closed")
	}
	return c.Append(nil), nil
}

// Checkpoint persists the monitor's current state to the configured
// Store and returns the generation written. It requires Config.
// Checkpoint.Store; Every may be 0 (manual-only checkpointing). On a
// synchronous monitor it runs immediately; in asynchronous mode it first
// drains the ingest queue (ctx bounds the wait, as in Drain) so the
// frame reflects every observation staged before the call. A networked
// or sharded monitor that is degraded or terminal cannot be
// checkpointed — the attempt fails, is counted in CheckpointStats, and
// the monitor stays usable.
func (m *Monitor) Checkpoint(ctx context.Context) (uint64, error) {
	if m.cfg.Checkpoint.Store == nil {
		return 0, errors.New("topk: no Config.Checkpoint.Store configured")
	}
	if m.drv != nil {
		if err := m.Drain(ctx); err != nil {
			return 0, err
		}
		m.engineMu.Lock()
		defer m.engineMu.Unlock()
	}
	return m.checkpointLocked()
}

// Restore rebuilds a Monitor from the newest valid checkpoint in store,
// taken by a monitor with this same configuration (engine selection,
// Nodes, K, Seed, DistinctValues and Epsilon must all match — a frame
// never silently restores into a configuration it was not taken under;
// mismatches yield a typed *RestoreError, store-level failures
// ErrNoCheckpoint or ErrCorruptCheckpoint, and an invalid cfg the same
// *ConfigError New returns).
//
// The in-process engines resume bit-identically to a monitor that never
// stopped. The networked and sharded engines handshake their peers from
// scratch (cfg.Transport must supply fresh links whose far ends run the
// node-host serve loop; in-process shard and tree monitors respawn
// their loopback peers), replay the checkpointed value mirror, and
// force a filter reset — reports are oracle-exact from the first
// post-restore step, with the recovery traffic visible in the ledgers,
// exactly as after a peer failover. A peer failing during the replay
// leaves the restored monitor degraded (or cleanly terminal), exactly
// as a mid-run failure would; Health tells the story.
//
// Checkpoint generation numbering continues from the restored frame
// when cfg.Checkpoint carries a store (typically the same one). As with
// New, Restore takes ownership of any cfg.Transport and closes it on
// every error path.
func Restore(store CheckpointStore, cfg Config) (*Monitor, error) {
	if store == nil {
		return nil, failNew(cfg, errNilStore)
	}
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	gen, frame, err := store.Load()
	if err != nil {
		return nil, failNew(cfg, err)
	}
	var c wire.Checkpoint
	if err := c.Decode(frame); err != nil {
		return nil, failNew(cfg, badRestore(err, "checkpoint generation %d", gen))
	}
	if c.Gen != gen {
		return nil, failNew(cfg, badRestore(nil, "frame filed as generation %d claims generation %d", gen, c.Gen))
	}
	if want := engineKind(cfg); c.Engine != want {
		return nil, failNew(cfg, badRestore(nil, "checkpoint was taken by the %s engine, config selects the %s engine", engineName(c.Engine), engineName(want)))
	}
	if c.Seed != cfg.Seed {
		return nil, failNew(cfg, badRestore(nil, "checkpoint seed %d differs from configured %d", c.Seed, cfg.Seed))
	}
	if c.Distinct != cfg.DistinctValues {
		return nil, failNew(cfg, badRestore(nil, "checkpoint distinct-values mode %v differs from configured %v", c.Distinct, cfg.DistinctValues))
	}
	m := &Monitor{cfg: cfg, maxVal: maxValueFor(cfg.Nodes, cfg.DistinctValues), ckptGen: gen}
	m.ckptStats.LastGen = gen
	switch c.Engine {
	case wire.EngineSeq:
		eng, err := core.Restore(core.Config{
			N: cfg.Nodes, K: cfg.K, Seed: cfg.Seed,
			DistinctValues: cfg.DistinctValues, Epsilon: cfg.Epsilon,
		}, c.Machine, c.Nodes)
		if err != nil {
			return nil, badRestore(err, "sequential engine")
		}
		m.seq = eng
	case wire.EngineConc:
		eng, err := runtime.Restore(runtime.Config{
			N: cfg.Nodes, K: cfg.K, Seed: cfg.Seed,
			DistinctValues: cfg.DistinctValues, Epsilon: cfg.Epsilon,
		}, c.Machine, c.Nodes)
		if err != nil {
			return nil, badRestore(err, "concurrent engine")
		}
		m.conc = eng
	case wire.EngineNet:
		eng, err := restoreNetEngine(cfg, c.Machine, c.Last)
		if err != nil {
			cfg.Transport.Close()
			return nil, err
		}
		m.net = eng
	default: // wire.EngineShard; engineKind matched above
		eng, err := restoreShardEngine(cfg, c.Machine, c.Last)
		if err != nil {
			return nil, err
		}
		m.shard = eng
	}
	if cfg.Ingest.QueueDepth > 0 {
		if err := m.startIngest(); err != nil {
			m.Close()
			return nil, err
		}
	}
	return m, nil
}

// restoreNetEngine is newNetEngine's counterpart over netrun.Restore.
func restoreNetEngine(cfg Config, machFrame []byte, last []int64) (*netrun.Engine, error) {
	links := cfg.Transport.Links()
	if len(links) == 0 || len(links) > cfg.Nodes {
		return nil, badConfig(cfg, "Transport", "must supply 1..Nodes links, got %d for %d nodes", len(links), cfg.Nodes)
	}
	internal := make([]transport.Link, len(links))
	for i, l := range links {
		internal[i] = l
	}
	eng, err := netrun.Restore(netrun.Config{
		N:              cfg.Nodes,
		K:              cfg.K,
		Seed:           cfg.Seed,
		DistinctValues: cfg.DistinctValues,
		Epsilon:        cfg.Epsilon,
		Lockstep:       cfg.Pipeline == PipelineOff,
		Redial:         cfg.redialInternal(),
		RetryBudget:    cfg.RetryBudget,
		RetryBackoff:   cfg.RetryBackoff,
		OnEvent:        cfg.onEventInternal(),
	}, internal, machFrame, last)
	if err != nil {
		return nil, badRestore(err, "networked engine")
	}
	return eng, nil
}

// restoreShardEngine rebuilds the sharded (or tree) engine over fresh
// loopback peers, mirroring New's engine selection.
func restoreShardEngine(cfg Config, machFrame []byte, last []int64) (*shardrun.Engine, error) {
	scfg := shardrun.Config{
		N: cfg.Nodes, K: cfg.K, Seed: cfg.Seed,
		DistinctValues: cfg.DistinctValues, Epsilon: cfg.Epsilon,
		Lockstep: cfg.Pipeline == PipelineOff,
		Redial:   cfg.redialInternal(), RetryBudget: cfg.RetryBudget,
		RetryBackoff: cfg.RetryBackoff, OnEvent: cfg.onEventInternal(),
	}
	var eng *shardrun.Engine
	var err error
	if !cfg.Tree.zero() {
		eng, err = shardrun.RestoreLoopbackTree(scfg, cfg.Tree.Branch, cfg.Tree.Depth, machFrame, last)
	} else {
		eng, err = shardrun.RestoreLoopback(scfg, cfg.Shards, machFrame, last)
	}
	if err != nil {
		return nil, badRestore(err, "sharded engine")
	}
	return eng, nil
}
