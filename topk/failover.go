package topk

import (
	"errors"

	"repro/internal/coord"
	"repro/internal/transport"
)

// EventKind identifies one failover event of a networked or sharded
// monitor.
type EventKind uint8

const (
	// EventPeerDown: a peer link died or misbehaved; recovery is scheduled.
	EventPeerDown EventKind = iota
	// EventPeerReplaced: a redialed replacement adopted the dead peer's range.
	EventPeerReplaced
	// EventRangeMerged: a dead peer's range was merged into a survivor.
	EventRangeMerged
	// EventPeerJoined: a late joiner adopted a range via Join.
	EventPeerJoined
	// EventRecovered: a recovery pass completed; reports track the oracle
	// again from the next step.
	EventRecovered
	// EventTerminal: recovery was abandoned; the monitor is wedged on its
	// last-good report and observations return Health().Terminal.
	EventTerminal
)

// String returns the event kind's name.
func (k EventKind) String() string { return coord.EventKind(k).String() }

// Event is one failover notification, delivered synchronously from the
// monitor's own goroutine to Config.OnEvent. The callback must not call
// back into the monitor.
type Event struct {
	Kind   EventKind
	Lo, Hi int   // affected node range
	Err    error // cause, for EventPeerDown and EventTerminal
}

// PeerHealth describes one live peer of a networked or sharded monitor.
type PeerHealth struct {
	Lo, Hi   int   // hosted node range
	Failures int64 // failures attributed to this peer slot
}

// Health is a monitor's failover state. The zero value means fully
// healthy; in-process engines always report it (with no peer list).
type Health struct {
	// Terminal is the unrecoverable failure that wedged the monitor, nil
	// while it can still make progress.
	Terminal error
	// Degraded reports that a peer failed and recovery runs at the next
	// observation call.
	Degraded bool
	// Failures and Recoveries count peer failures and completed recovery
	// passes over the monitor's lifetime.
	Failures   int64
	Recoveries int64
	// Peers lists the live peer ranges (networked and sharded engines).
	Peers []PeerHealth
}

// convertHealth maps the engine-side health to the public mirror.
func convertHealth(h coord.Health) Health {
	out := Health{
		Terminal:   h.Terminal,
		Degraded:   h.Degraded,
		Failures:   h.Failures,
		Recoveries: h.Recoveries,
	}
	for _, p := range h.Peers {
		out.Peers = append(out.Peers, PeerHealth{Lo: p.Lo, Hi: p.Hi, Failures: p.Failures})
	}
	return out
}

// convertEvent maps the engine-side event to the public mirror.
func convertEvent(ev coord.Event) Event {
	return Event{Kind: EventKind(ev.Kind), Lo: ev.Lo, Hi: ev.Hi, Err: ev.Err}
}

// redialInternal adapts the public Redial factory to the engine-side
// link type (nil stays nil).
func (c Config) redialInternal() func() (transport.Link, error) {
	if c.Redial == nil {
		return nil
	}
	return func() (transport.Link, error) {
		l, err := c.Redial()
		if err != nil {
			return nil, err
		}
		return transport.Link(l), nil
	}
}

// onEventInternal adapts the public event callback to the engine-side
// event type (nil stays nil).
func (c Config) onEventInternal() func(coord.Event) {
	if c.OnEvent == nil {
		return nil
	}
	return func(ev coord.Event) { c.OnEvent(convertEvent(ev)) }
}

// Health reports the monitor's failover state: terminal error, pending
// recovery, failure/recovery counters and live peer ranges. In-process
// engines (sequential, concurrent) have no links to lose and always
// report the zero Health.
func (m *Monitor) Health() Health {
	if m.drv != nil {
		m.engineMu.Lock()
		defer m.engineMu.Unlock()
	}
	switch {
	case m.net != nil:
		return convertHealth(m.net.Health())
	case m.shard != nil:
		return convertHealth(m.shard.Health())
	default:
		return Health{}
	}
}

// Join attaches a late-joining peer to a networked monitor mid-stream
// (the far end of link must be running the node-host serve loop, e.g. a
// process started with `topkmon -join`): the widest hosted range is
// split, its upper half handed to the new link, and the monitor
// re-converges before the next step. Only networked and sharded monitors
// accept joiners; call it between observation calls only. On error the
// link is closed.
func (m *Monitor) Join(link Link) error {
	switch {
	case m.net != nil:
		return m.net.Join(transport.Link(link))
	case m.shard != nil:
		return m.shard.Join(transport.Link(link))
	default:
		link.Close()
		return errors.New("topk: Join requires a networked or sharded monitor")
	}
}
