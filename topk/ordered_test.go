package topk

import (
	"sort"
	"testing"

	"repro/internal/stream"
)

func rankOracle(vals []int64, k int) []int {
	type kv struct {
		id int
		v  int64
	}
	s := make([]kv, len(vals))
	for i, v := range vals {
		s[i] = kv{i, v}
	}
	sort.Slice(s, func(a, b int) bool {
		if s[a].v != s[b].v {
			return s[a].v > s[b].v
		}
		return s[a].id < s[b].id
	})
	out := make([]int, k)
	for i := range out {
		out[i] = s[i].id
	}
	return out
}

func TestNewOrderedValidation(t *testing.T) {
	if _, err := NewOrdered(Config{Nodes: 0, K: 1}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := NewOrdered(Config{Nodes: 3, K: 4}); err == nil {
		t.Fatal("expected error")
	}
	m, err := NewOrdered(Config{Nodes: 3, K: 1, Concurrent: true})
	if err != nil {
		t.Fatalf("concurrent ordered should be supported: %v", err)
	}
	m.Close()
	m.Close() // idempotent
}

func TestOrderedEnginesAgree(t *testing.T) {
	seq, err := NewOrdered(Config{Nodes: 8, K: 3, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	conc, err := NewOrdered(Config{Nodes: 8, K: 3, Seed: 41, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer conc.Close()
	mk := func() stream.Source {
		return stream.NewRandomWalk(stream.WalkConfig{N: 8, Lo: 0, Hi: 100000, MaxStep: 800, Seed: 42})
	}
	a, b := mk(), mk()
	va, vb := make([]int64, 8), make([]int64, 8)
	for s := 0; s < 150; s++ {
		a.Step(va)
		b.Step(vb)
		ta, err1 := seq.Observe(va)
		tb, err2 := conc.Observe(vb)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for i := range ta {
			if ta[i] != tb[i] {
				t.Fatalf("step %d: rankings differ: %v vs %v", s, ta, tb)
			}
		}
		if seq.Counts() != conc.Counts() {
			t.Fatalf("step %d: counts differ", s)
		}
	}
}

func TestOrderedMonitorExactRanks(t *testing.T) {
	m, err := NewOrdered(Config{Nodes: 10, K: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	src := stream.NewRandomWalk(stream.WalkConfig{N: 10, Lo: 0, Hi: 100000, MaxStep: 700, Seed: 22})
	vals := make([]int64, 10)
	for s := 0; s < 300; s++ {
		src.Step(vals)
		got, err := m.Observe(vals)
		if err != nil {
			t.Fatal(err)
		}
		want := rankOracle(vals, 4)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d: rank %d is node %d, want %d", s, i+1, got[i], want[i])
			}
		}
	}
	if m.Counts().Total() == 0 {
		t.Fatal("no messages counted")
	}
	if m.Stats().Steps != 300 {
		t.Fatalf("stats: %+v", m.Stats())
	}
}

func TestOrderedMonitorErrors(t *testing.T) {
	m, _ := NewOrdered(Config{Nodes: 3, K: 2})
	if _, err := m.Observe([]int64{1, 2}); err == nil {
		t.Fatal("wrong length should error")
	}
}

func TestOrderedTopAndPhases(t *testing.T) {
	m, _ := NewOrdered(Config{Nodes: 5, K: 3, Seed: 23})
	if len(m.Top()) != 0 {
		t.Fatal("pre-observe Top should be empty")
	}
	if _, err := m.Observe([]int64{10, 50, 30, 20, 40}); err != nil {
		t.Fatal(err)
	}
	top := m.Top()
	if len(top) != 3 || top[0] != 1 || top[1] != 4 || top[2] != 2 {
		t.Fatalf("rank order: %v", top)
	}
	p := m.Phases()
	if p.Violation.Total()+p.Handler.Total()+p.Reset.Total() != m.Counts().Total() {
		t.Fatal("phase sum mismatch")
	}
}
