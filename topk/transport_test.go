package topk_test

import (
	"testing"

	"repro/topk"
)

// TestTransportEngineEquivalence drives the public networked engine (over
// an in-process loopback transport) against the default sequential engine
// and requires identical reports, counts and charged bytes.
func TestTransportEngineEquivalence(t *testing.T) {
	const n, k, seed, steps = 12, 3, 77, 150
	seq, err := topk.New(topk.Config{Nodes: n, K: k, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	net, err := topk.New(topk.Config{Nodes: n, K: k, Seed: seed, Transport: topk.Loopback(3)})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()

	vals := make([]int64, n)
	for s := 0; s < steps; s++ {
		for i := range vals {
			// A deterministic little churn pattern with rank swaps.
			vals[i] = int64((i*37+s*13)%200) * int64(1+i%3)
		}
		a, err := seq.Observe(vals)
		if err != nil {
			t.Fatal(err)
		}
		b, err := net.Observe(vals)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("step %d: reports differ: %v vs %v", s, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("step %d: reports differ: %v vs %v", s, a, b)
			}
		}
	}
	if ca, cb := seq.Counts(), net.Counts(); ca != cb {
		t.Fatalf("counts differ: seq=%+v net=%+v", ca, cb)
	}
	if ba, bb := seq.Bytes(), net.Bytes(); ba != bb || ba.Total() == 0 {
		t.Fatalf("bytes differ or empty: seq=%+v net=%+v", ba, bb)
	}
	if pa, pb := seq.BytesByPhase(), net.BytesByPhase(); pa != pb {
		t.Fatalf("phase bytes differ: seq=%+v net=%+v", pa, pb)
	}
	if ts := net.TransportStats(); ts.SentFrames == 0 || ts.RecvBytes == 0 {
		t.Fatalf("transport stats empty: %+v", ts)
	}
	if ts := seq.TransportStats(); ts != (topk.TransportStats{}) {
		t.Fatalf("sequential engine reported transport traffic: %+v", ts)
	}
}

func TestTransportConfigValidation(t *testing.T) {
	tr := topk.Loopback(2)
	defer tr.Close()
	if _, err := topk.New(topk.Config{Nodes: 4, K: 2, Concurrent: true, Transport: tr}); err == nil {
		t.Fatal("Concurrent+Transport accepted")
	}
	// More links than nodes cannot all host a node.
	tr3 := topk.Loopback(3)
	defer tr3.Close()
	if _, err := topk.New(topk.Config{Nodes: 2, K: 1, Transport: tr3}); err == nil {
		t.Fatal("3 peers for 2 nodes accepted")
	}
}

func TestTransportMonitorClose(t *testing.T) {
	net, err := topk.New(topk.Config{Nodes: 6, K: 2, Seed: 5, Transport: topk.Loopback(2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Observe([]int64{6, 5, 4, 3, 2, 1}); err != nil {
		t.Fatal(err)
	}
	net.Close()
	net.Close() // idempotent
	if _, err := net.Observe([]int64{6, 5, 4, 3, 2, 1}); err == nil {
		t.Fatal("observe after close succeeded")
	}
}
