// Package topk is the public API of this repository: continuous,
// communication-efficient monitoring of the k nodes holding the largest
// values among n distributed data streams, after
//
//	Mäcker, Malatyali, Meyer auf der Heide:
//	"Online Top-k-Position Monitoring of Distributed Data Streams"
//	(IPDPS 2015, arXiv:1410.7912).
//
// A Monitor plays the coordinator-plus-nodes system of the paper against
// observation vectors supplied one time step at a time. After every
// Observe call the reported top-k set is exact — the protocols inside are
// Las Vegas, randomness affects only the amount of communication — and the
// Counts method exposes how many model messages (node→coordinator unicast,
// coordinator→node unicast, broadcast) the system has exchanged so far.
//
// On "similar" inputs, where values change slowly, communication is orders
// of magnitude below forwarding every observation: the coordinator assigns
// every node a filter interval and nodes stay silent while their values
// remain inside it. Against an offline optimum that sets filters
// clairvoyantly, the algorithm is O((log ∆ + k)·log n)-competitive in
// expectation, where ∆ bounds the gap between the k-th and (k+1)-st
// largest values.
//
// # Sparse ingestion
//
// The computational cost mirrors the communication cost: ObserveDelta
// ingests only the streams whose value changed this step, so a
// violation-free step costs O(#changed nodes) and performs no heap
// allocation — the regime a large deployment with millions of mostly-idle
// streams lives in. Observe (the dense form) and ObserveDelta may be
// interleaved freely and produce identical reports and identical message
// counts for the same logical value sequence. Nodes hold the value 0
// until their first observation.
//
// Both ingestion methods return a read-only view of the current top-k set
// that remains valid until the next step; use AppendTop to retain a copy.
//
// Three execution engines are available: a fast deterministic sequential
// engine (default), a sharded goroutine engine that exchanges batched
// channel messages (Config.Concurrent), and a networked engine that
// drives the wire protocol over a Transport's links so the monitored
// nodes can live in other processes (Config.Transport; see Loopback and
// cmd/topkmon's -serve/-join modes). All three produce identical reports,
// identical message counts and identical charged bytes for the same seed.
package topk

import (
	"errors"
	"fmt"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/netrun"
	"repro/internal/runtime"
	"repro/internal/sim"
)

// Counts reports exchanged messages by kind. Every kind has unit cost in
// the model; a broadcast counts once no matter how many nodes receive it.
type Counts struct {
	// Up counts node-to-coordinator messages.
	Up int64
	// Down counts coordinator-to-single-node messages.
	Down int64
	// Broadcast counts coordinator broadcasts.
	Broadcast int64
}

// Total returns the overall message count.
func (c Counts) Total() int64 { return c.Up + c.Down + c.Broadcast }

// PhaseCounts breaks the total down by the phase of the algorithm that
// caused the communication.
type PhaseCounts struct {
	// Violation covers the protocols started by filter-violating nodes.
	Violation Counts
	// Handler covers the coordinator's violation handler including
	// midpoint broadcasts.
	Handler Counts
	// Reset covers full filter resets (including initialization).
	Reset Counts
}

// Stats exposes behavioural counters of a run.
type Stats struct {
	// Steps is the number of Observe calls so far.
	Steps int64
	// ViolationSteps counts steps with at least one filter violation.
	ViolationSteps int64
	// Resets counts full filter recomputations (including the initial one).
	Resets int64
	// TopChanges counts steps whose reported set differed from the
	// previous step's.
	TopChanges int64
}

// Config parameterizes a Monitor.
type Config struct {
	// Nodes is the number of distributed streams (n >= 1).
	Nodes int
	// K is the size of the monitored top set (1 <= K <= Nodes).
	K int
	// Seed drives the protocol randomness. Two monitors with equal
	// configuration and seed behave identically message for message.
	Seed uint64
	// DistinctValues promises that every observation vector has pairwise
	// distinct values (the paper's model assumption). When false (the
	// default) the monitor breaks ties deterministically by smaller node
	// id via an order-preserving key injection.
	DistinctValues bool
	// Concurrent selects the sharded concurrent engine. Monitors with
	// Concurrent set must be Closed to release their goroutines.
	Concurrent bool
	// Transport selects the networked engine: the monitor drives the wire
	// protocol over the transport's links, one peer per link, instead of
	// an in-process engine. Use Loopback for in-process peers; cmd/topkmon
	// shows the TCP form. Mutually exclusive with Concurrent; monitors
	// with a Transport must be Closed to release the peers. New takes
	// ownership of the Transport: it is closed on any New error (the
	// links are unusable after a failed handshake) and by Monitor.Close.
	Transport Transport
}

// Monitor continuously tracks the top-k positions. Create one with New.
// A Monitor is not safe for concurrent use: the model's time steps are
// globally ordered.
type Monitor struct {
	cfg  Config
	seq  *core.Monitor
	conc *runtime.Runtime
	net  *netrun.Engine
}

// New validates cfg and creates a Monitor.
func New(cfg Config) (*Monitor, error) {
	if cfg.Nodes <= 0 {
		return nil, errors.New("topk: Nodes must be positive")
	}
	if cfg.K < 1 || cfg.K > cfg.Nodes {
		return nil, fmt.Errorf("topk: K must satisfy 1 <= K <= Nodes, got K=%d Nodes=%d", cfg.K, cfg.Nodes)
	}
	if cfg.Concurrent && cfg.Transport != nil {
		cfg.Transport.Close()
		return nil, errors.New("topk: Concurrent and Transport are mutually exclusive")
	}
	m := &Monitor{cfg: cfg}
	switch {
	case cfg.Transport != nil:
		eng, err := newNetEngine(cfg)
		if err != nil {
			// The transport's links are unusable after a failed (or never
			// attempted) handshake; release them and their serve loops so
			// a retrying caller does not accumulate goroutines.
			cfg.Transport.Close()
			return nil, err
		}
		m.net = eng
	case cfg.Concurrent:
		m.conc = runtime.New(runtime.Config{N: cfg.Nodes, K: cfg.K, Seed: cfg.Seed, DistinctValues: cfg.DistinctValues})
	default:
		m.seq = core.New(core.Config{N: cfg.Nodes, K: cfg.K, Seed: cfg.Seed, DistinctValues: cfg.DistinctValues})
	}
	return m, nil
}

// Observe feeds one time step of observations (vals[i] is node i's new
// value, len(vals) == Nodes) and returns the node ids currently holding
// the K largest values, in ascending id order. The returned slice is a
// read-only view owned by the monitor, valid until the next step; use
// AppendTop to retain a copy. It returns an error for a wrong-length
// input or a closed monitor.
func (m *Monitor) Observe(vals []int64) ([]int, error) {
	if len(vals) != m.cfg.Nodes {
		return nil, fmt.Errorf("topk: observed %d values for %d nodes", len(vals), m.cfg.Nodes)
	}
	switch {
	case m.seq != nil:
		return m.seq.Observe(vals), nil
	case m.conc != nil:
		return m.conc.Observe(vals), nil
	case m.net != nil:
		return m.net.Observe(vals), nil
	default:
		return nil, errors.New("topk: monitor is closed")
	}
}

// ObserveDelta feeds one time step in which only the streams listed in ids
// changed: vals[j] is node ids[j]'s new value, every other node repeats
// its previous value (0 before its first observation). ids must be
// strictly increasing; both slices may be empty (a step where nothing
// changed) and are not retained, so callers may reuse their buffers. The
// returned slice is a read-only view, as with Observe.
//
// A violation-free delta step costs O(len(ids)) work and zero heap
// allocations on the sequential engine, independent of Nodes.
func (m *Monitor) ObserveDelta(ids []int, vals []int64) ([]int, error) {
	if len(ids) != len(vals) {
		return nil, fmt.Errorf("topk: delta has %d ids but %d values", len(ids), len(vals))
	}
	prev := -1
	for _, id := range ids {
		if id <= prev || id >= m.cfg.Nodes {
			return nil, fmt.Errorf("topk: delta ids must be strictly increasing in [0, %d)", m.cfg.Nodes)
		}
		prev = id
	}
	switch {
	case m.seq != nil:
		return m.seq.ObserveDelta(ids, vals), nil
	case m.conc != nil:
		return m.conc.ObserveDelta(ids, vals), nil
	case m.net != nil:
		return m.net.ObserveDelta(ids, vals), nil
	default:
		return nil, errors.New("topk: monitor is closed")
	}
}

// Top returns the most recently reported top-k ids without consuming a
// step, as a read-only view (see Observe). Before the first observation
// it returns an empty slice.
func (m *Monitor) Top() []int {
	switch {
	case m.seq != nil:
		return m.seq.Top()
	case m.conc != nil:
		return m.conc.Top()
	case m.net != nil:
		return m.net.Top()
	default:
		return nil
	}
}

// AppendTop appends the most recently reported top-k ids (ascending) to
// dst and returns the extended slice. With a dst of capacity >= K it
// performs no allocation.
func (m *Monitor) AppendTop(dst []int) []int {
	switch {
	case m.seq != nil:
		return m.seq.AppendTop(dst)
	case m.conc != nil:
		return m.conc.AppendTop(dst)
	case m.net != nil:
		return m.net.AppendTop(dst)
	default:
		return dst
	}
}

// Counts returns the total messages exchanged so far.
func (m *Monitor) Counts() Counts {
	var c comm.Counts
	switch {
	case m.seq != nil:
		c = m.seq.Counts()
	case m.conc != nil:
		c = m.conc.Counts()
	case m.net != nil:
		c = m.net.Counts()
	}
	return Counts{Up: c.Up, Down: c.Down, Broadcast: c.Bcast}
}

// Phases returns the per-phase message breakdown.
func (m *Monitor) Phases() PhaseCounts {
	var led *comm.Ledger
	switch {
	case m.seq != nil:
		led = m.seq.Ledger()
	case m.conc != nil:
		led = m.conc.Ledger()
	case m.net != nil:
		led = m.net.Ledger()
	default:
		return PhaseCounts{}
	}
	conv := func(c comm.Counts) Counts { return Counts{Up: c.Up, Down: c.Down, Broadcast: c.Bcast} }
	return PhaseCounts{
		Violation: conv(led.PhaseCounts(comm.PhaseViolation)),
		Handler:   conv(led.PhaseCounts(comm.PhaseHandler)),
		Reset:     conv(led.PhaseCounts(comm.PhaseReset)),
	}
}

// Bytes reports the encoded size of the charged messages, by kind. Every
// counted message has a canonical wire encoding (a bid carries a node id
// and a key, a broadcast carries a round number or filter bound and a
// key); Bytes sums those exact encoded lengths, which is the quantity the
// paper's Theorem 4.2 bounds per Top-k change. All engines report
// identical Bytes for the same seed; the networked engine's additional
// framing overhead appears in TransportStats instead.
type Bytes struct {
	// Up counts node-to-coordinator bytes.
	Up int64
	// Down counts coordinator-to-single-node bytes.
	Down int64
	// Broadcast counts coordinator broadcast bytes.
	Broadcast int64
}

// Total returns the overall charged byte volume.
func (b Bytes) Total() int64 { return b.Up + b.Down + b.Broadcast }

// PhaseBytes breaks the charged bytes down by algorithm phase, mirroring
// PhaseCounts.
type PhaseBytes struct {
	Violation Bytes
	Handler   Bytes
	Reset     Bytes
}

// Bytes returns the total charged model bytes exchanged so far.
func (m *Monitor) Bytes() Bytes {
	var b comm.Bytes
	switch {
	case m.seq != nil:
		b = m.seq.Ledger().TotalBytes()
	case m.conc != nil:
		b = m.conc.Ledger().TotalBytes()
	case m.net != nil:
		b = m.net.Ledger().TotalBytes()
	}
	return Bytes{Up: b.Up, Down: b.Down, Broadcast: b.Bcast}
}

// BytesByPhase returns the per-phase charged byte breakdown.
func (m *Monitor) BytesByPhase() PhaseBytes {
	var led *comm.Ledger
	switch {
	case m.seq != nil:
		led = m.seq.Ledger()
	case m.conc != nil:
		led = m.conc.Ledger()
	case m.net != nil:
		led = m.net.Ledger()
	default:
		return PhaseBytes{}
	}
	conv := func(b comm.Bytes) Bytes { return Bytes{Up: b.Up, Down: b.Down, Broadcast: b.Bcast} }
	return PhaseBytes{
		Violation: conv(led.PhaseBytes(comm.PhaseViolation)),
		Handler:   conv(led.PhaseBytes(comm.PhaseHandler)),
		Reset:     conv(led.PhaseBytes(comm.PhaseReset)),
	}
}

// TransportStats returns the frames and framed bytes that crossed the
// links of a networked monitor, control plane included. The in-process
// engines report the zero value.
func (m *Monitor) TransportStats() TransportStats {
	if m.net == nil {
		return TransportStats{}
	}
	s := m.net.TransportStats()
	return TransportStats{
		SentFrames: s.SentFrames, SentBytes: s.SentBytes,
		RecvFrames: s.RecvFrames, RecvBytes: s.RecvBytes,
	}
}

// Stats returns behavioural counters. Only the sequential engine tracks
// them; the concurrent and networked engines report the zero value (use
// Counts, Bytes and Phases, which all engines maintain identically).
func (m *Monitor) Stats() Stats {
	if m.seq != nil {
		s := m.seq.Stats()
		return Stats{Steps: s.Steps, ViolationSteps: s.ViolationSteps, Resets: s.Resets, TopChanges: s.TopChanges}
	}
	return Stats{}
}

// Close releases the goroutines of a concurrent monitor and the peers of
// a networked one. It is a no-op for the sequential engine and idempotent
// everywhere. The monitor cannot observe after Close.
func (m *Monitor) Close() {
	if m.conc != nil {
		m.conc.Close()
		m.conc = nil
	}
	if m.net != nil {
		m.net.Close()
		m.net = nil
		if m.cfg.Transport != nil {
			m.cfg.Transport.Close()
		}
	}
	m.seq = nil
}

// Oracle computes the exact top-k ids (ascending) of a single observation
// vector with the same deterministic tie-break the Monitor uses (equal
// values: smaller id wins). It is a convenience for verification and for
// batch use; it involves no communication model.
func Oracle(vals []int64, k int) ([]int, error) {
	if len(vals) == 0 {
		return nil, errors.New("topk: empty observation vector")
	}
	if k < 1 || k > len(vals) {
		return nil, fmt.Errorf("topk: k must satisfy 1 <= k <= %d, got %d", len(vals), k)
	}
	return sim.Oracle(vals, k), nil
}
