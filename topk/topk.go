// Package topk is the public API of this repository: continuous,
// communication-efficient monitoring of the k nodes holding the largest
// values among n distributed data streams, after
//
//	Mäcker, Malatyali, Meyer auf der Heide:
//	"Online Top-k-Position Monitoring of Distributed Data Streams"
//	(IPDPS 2015, arXiv:1410.7912).
//
// A Monitor plays the coordinator-plus-nodes system of the paper against
// observation vectors supplied one time step at a time. After every
// Observe call the reported top-k set is exact — the protocols inside are
// Las Vegas, randomness affects only the amount of communication — and the
// Counts method exposes how many model messages (node→coordinator unicast,
// coordinator→node unicast, broadcast) the system has exchanged so far.
// Setting Config.Epsilon relaxes exactness to a guaranteed
// ε-approximation (the tolerance variant of arXiv:1601.04448) for
// substantially less communication; observation magnitudes are bounded by
// Monitor.MaxValue, and no input to any method of this package can panic
// the monitor.
//
// On "similar" inputs, where values change slowly, communication is orders
// of magnitude below forwarding every observation: the coordinator assigns
// every node a filter interval and nodes stay silent while their values
// remain inside it. Against an offline optimum that sets filters
// clairvoyantly, the algorithm is O((log ∆ + k)·log n)-competitive in
// expectation, where ∆ bounds the gap between the k-th and (k+1)-st
// largest values.
//
// # Sparse ingestion
//
// The computational cost mirrors the communication cost: ObserveDelta
// ingests only the streams whose value changed this step, so a
// violation-free step costs O(#changed nodes) and performs no heap
// allocation — the regime a large deployment with millions of mostly-idle
// streams lives in. Observe (the dense form) and ObserveDelta may be
// interleaved freely and produce identical reports and identical message
// counts for the same logical value sequence. Nodes hold the value 0
// until their first observation.
//
// Both ingestion methods return a read-only view of the current top-k set
// that remains valid until the next step; use AppendTop to retain a copy —
// the copy is caller-owned and mutating it never affects the monitor.
//
// Four execution engines are available: a fast deterministic sequential
// engine (default), a sharded goroutine engine that exchanges batched
// channel messages (Config.Concurrent), a networked engine that drives
// the wire protocol over a Transport's links so the monitored nodes can
// live in other processes (Config.Transport; see Loopback and
// cmd/topkmon's -serve/-join modes), and a multi-coordinator engine that
// splits the coordinator itself into Config.Shards sub-coordinators under
// a root merge layer. All run the same coordinator core (one copy of
// Algorithm 1's decision logic); the first three produce identical
// reports, identical message counts and identical charged bytes for the
// same seed, and the sharded engine matches them exactly at Shards == 1
// while staying report-exact at any shard count.
//
// Config.Tree generalizes the multi-coordinator engine into a
// hierarchical coordinator tree — interior coordinators merge their
// children's protocol digests and forward exactly one digest up, so the
// root serves Branch^Depth leaf shards while every machine holds only
// Branch links. Reports and all model ledgers are bit-identical to the
// flat star over the same leaves; Monitor.TreeStats exposes each level's
// coordination traffic and, with Epsilon set, the per-level tightened
// band ladder's absorption counters.
//
// Config.Checkpoint adds durable crash-restart: the monitor persists
// CRC-sealed state frames to a CheckpointStore (FileCheckpoints,
// MemCheckpoints) at idle step boundaries, and Restore rebuilds a
// monitor — bit-identically on the local engines, oracle-exact after a
// forced filter reset on the networked ones — from the newest valid
// frame after the coordinator process itself dies.
package topk

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/netrun"
	"repro/internal/order"
	"repro/internal/runtime"
	"repro/internal/shardrun"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Counts reports exchanged messages by kind. Every kind has unit cost in
// the model; a broadcast counts once no matter how many nodes receive it.
type Counts struct {
	// Up counts node-to-coordinator messages.
	Up int64
	// Down counts coordinator-to-single-node messages.
	Down int64
	// Broadcast counts coordinator broadcasts.
	Broadcast int64
}

// Total returns the overall message count.
func (c Counts) Total() int64 { return c.Up + c.Down + c.Broadcast }

// PhaseCounts breaks the total down by the phase of the algorithm that
// caused the communication.
type PhaseCounts struct {
	// Violation covers the protocols started by filter-violating nodes.
	Violation Counts
	// Handler covers the coordinator's violation handler including
	// midpoint broadcasts.
	Handler Counts
	// Reset covers full filter resets (including initialization).
	Reset Counts
}

// Stats exposes behavioural counters of a run.
type Stats struct {
	// Steps is the number of Observe calls so far.
	Steps int64
	// ViolationSteps counts steps with at least one filter violation.
	ViolationSteps int64
	// Resets counts full filter recomputations (including the initial one).
	Resets int64
	// TopChanges counts steps whose reported set differed from the
	// previous step's.
	TopChanges int64
}

// Config parameterizes a Monitor.
type Config struct {
	// Nodes is the number of distributed streams (n >= 1).
	Nodes int
	// K is the size of the monitored top set (1 <= K <= Nodes).
	K int
	// Seed drives the protocol randomness. Two monitors with equal
	// configuration and seed behave identically message for message.
	Seed uint64
	// DistinctValues promises that every observation vector has pairwise
	// distinct values (the paper's model assumption). When false (the
	// default) the monitor breaks ties deterministically by smaller node
	// id via an order-preserving key injection.
	DistinctValues bool
	// Epsilon selects ε-approximate monitoring (0 <= Epsilon < 1), after
	// Mäcker et al., "On Competitive Algorithms for Approximations of
	// Top-k-Position Monitoring" (arXiv:1601.04448): node filters widen to
	// (1±ε) bands around the separating threshold, violations whose
	// learned extrema still fit one band skip the expensive filter reset,
	// and protocol participants retire early once they are within
	// tolerance of the running best. Every report is then a valid
	// ε-approximation of the true top-k — any reported node's key is
	// within the (1±ε) band of a threshold that also bounds every
	// unreported node — instead of exact, in exchange for substantially
	// less communication on drifting workloads (see EXPERIMENTS.md E19).
	// Tolerances are quantized to multiples of 2^-20. At 0 (the default)
	// the monitor is bit-identical to the exact algorithm, ledgers
	// included. All four engines support it.
	Epsilon float64
	// Ingest configures asynchronous ingestion: with a positive
	// QueueDepth, Observe and ObserveDelta stage their updates in a
	// bounded per-node coalescing queue and return immediately while a
	// background worker executes the protocol steps, and Drain recovers
	// synchronous semantics on demand. The zero value keeps every
	// observation call blocking. All four engines support it; see the
	// Ingest type for the coalescing and overflow semantics.
	Ingest Ingest
	// Concurrent selects the sharded concurrent engine. Monitors with
	// Concurrent set must be Closed to release their goroutines.
	Concurrent bool
	// Transport selects the networked engine: the monitor drives the wire
	// protocol over the transport's links, one peer per link, instead of
	// an in-process engine. Use Loopback for in-process peers; cmd/topkmon
	// shows the TCP form. Mutually exclusive with Concurrent; monitors
	// with a Transport must be Closed to release the peers. New takes
	// ownership of the Transport: it is closed on any New error (the
	// links are unusable after a failed handshake) and by Monitor.Close.
	Transport Transport
	// Pipeline controls the I/O pipelining of the networked and sharded
	// engines (it has no effect on the in-process engines). The zero
	// value, PipelineOn, is the default: fan-outs send to every peer
	// before gathering the replies concurrently, and ack-only commands
	// coalesce into batched frames, so step latency follows the slowest
	// peer instead of the peer count. PipelineOff restores the strictly
	// sequential per-peer request/reply cycle. Both modes produce
	// bit-identical reports, message counts and charged bytes; only
	// wall-clock latency and transport framing differ.
	Pipeline PipelineMode
	// Redial, when set, is called by the networked and sharded engines
	// during failover to obtain a replacement link for a dead peer (the far
	// end must run the matching serve loop); the replacement adopts the
	// dead peer's exact node range. When nil, or when a redial fails, the
	// range is merged into a surviving neighbor instead. In-process engines
	// ignore it.
	Redial func() (Link, error)
	// RetryBudget bounds how many full recovery attempts the engine makes
	// before declaring itself terminally degraded (see Health). Zero
	// selects the default of 3.
	RetryBudget int
	// RetryBackoff is the base delay between recovery attempts; waits are
	// jittered around it and double per attempt. Zero selects 10ms.
	RetryBackoff time.Duration
	// OnEvent, when set, receives failover events synchronously from the
	// monitor's own goroutine; the callback must not call back into the
	// monitor. In-process engines never emit events.
	OnEvent func(Event)
	// Shards selects the multi-coordinator engine: the node space is
	// split into this many contiguous ranges, each owned by its own
	// sub-coordinator, with a root merge layer maintaining the global
	// top-k from the per-shard candidates. Reports stay exact at every
	// step for any shard count (with DistinctValues and a transiently
	// broken distinctness promise, ties among equal keys may resolve
	// differently than on the other engines — see internal/shardrun's
	// package comment); at Shards == 1 the message ledger is
	// bit-identical to the sequential engine's, and for larger values the
	// per-shard protocol rounds and the root↔shard digest traffic (see
	// Overhead) are the price of removing the single-coordinator
	// bottleneck. 0 (the default) disables sharding; Shards must not
	// exceed Nodes and is mutually exclusive with Concurrent and
	// Transport. Sharded monitors must be Closed.
	Shards int
	// Tree arranges the sharded engine's sub-coordinators as a tree of
	// Tree.Depth levels with fan-out Tree.Branch at every node: the root
	// talks to Branch interior coordinators, each relaying to Branch
	// children, down to Branch^Depth leaf shards. Reports, message counts
	// and charged bytes are identical to a flat Shards = Branch^Depth
	// monitor — interior nodes merge associatively and make no protocol
	// decisions — but the root's own fan-in stays at Branch links, and in
	// the ε mode each level below the root runs a tightened tolerance
	// band (widening monotonically toward Epsilon at the root) whose
	// absorption profile TreeStats reports. The zero value keeps the flat
	// layout. Branch^Depth must not exceed Nodes; Tree is mutually
	// exclusive with Concurrent and Transport, and Shards, when also set,
	// must equal Branch^Depth. Tree monitors must be Closed.
	Tree Tree
	// Checkpoint configures durable checkpointing: with a Store set the
	// monitor can persist its execution state as CRC-sealed frames —
	// automatically every Checkpoint.Every applied steps, or on demand
	// through Monitor.Checkpoint — and a crashed coordinator process
	// restarts from the latest valid frame with Restore. The zero value
	// disables checkpointing. All four engines support it; see the
	// Checkpoint type for the durability and recovery semantics.
	Checkpoint Checkpoint
}

// Tree is the hierarchical-coordinator shape of Config.Tree: Branch is
// the fan-out of the root and of every interior coordinator (at least 2),
// Depth the number of link levels below the root (at least 1; depth 1 is
// the flat star). A depth-d tree serves Branch^d leaf shards while the
// root maintains only Branch links.
type Tree struct {
	Branch int
	Depth  int
}

// zero reports whether no tree is configured.
func (t Tree) zero() bool { return t == Tree{} }

// leaves returns Branch^Depth with an overflow guard.
func (t Tree) leaves() (int, bool) {
	if t.Branch < 2 || t.Depth < 1 {
		return 0, false
	}
	n := 1
	for i := 0; i < t.Depth; i++ {
		if n > (1<<30)/t.Branch {
			return 0, false
		}
		n *= t.Branch
	}
	return n, true
}

// PipelineMode selects how the networked and sharded engines drive their
// links; see Config.Pipeline.
type PipelineMode uint8

const (
	// PipelineOn (the default) fans commands out to all peers before
	// gathering replies concurrently, and coalesces ack-only commands
	// into batched frames.
	PipelineOn PipelineMode = iota
	// PipelineOff drives every link in a strictly sequential per-peer
	// request/reply cycle. Useful as a latency baseline and for
	// debugging transports one frame at a time.
	PipelineOff
)

// Monitor continuously tracks the top-k positions. Create one with New.
// A synchronous Monitor is not safe for concurrent use: the model's
// time steps are globally ordered. In asynchronous mode (a positive
// Config.Ingest.QueueDepth) the observation methods, Drain and every
// read accessor are safe for concurrent use — the ingest queue is the
// serialization point — and only Close must wait for producers to stop.
type Monitor struct {
	cfg    Config
	maxVal int64
	seq    *core.Monitor
	conc   *runtime.Runtime
	net    *netrun.Engine
	shard  *shardrun.Engine

	// Asynchronous ingestion (Config.Ingest.QueueDepth > 0): drv owns
	// the coalescing queue and the worker goroutine; engineMu
	// serializes the worker's protocol steps against the read
	// accessors; allIDs is the dense id list Observe stages.
	drv      *ingest.Driver
	engineMu sync.Mutex
	allIDs   []int

	// Durable checkpointing (Config.Checkpoint): the generation counter,
	// the steps applied since the last automatic checkpoint, and the
	// outcome counters CheckpointStats reports. In asynchronous mode
	// engineMu guards them (the worker checkpoints under it); a
	// synchronous monitor is single-threaded by contract.
	ckptGen     uint64
	ckptApplied int
	ckptStats   CheckpointStats
}

// failNew rejects a configuration, releasing the Transport's links and
// serve loops first: New and NewOrdered take ownership of the Transport,
// so every error return must close it or a retrying caller accumulates
// goroutines.
func failNew(cfg Config, err error) error {
	if cfg.Transport != nil {
		cfg.Transport.Close()
	}
	return err
}

// validateConfig runs the full construction-time validation ladder shared
// by New and Restore. A rejection is a typed *ConfigError naming the
// offending field, and any Transport the configuration carries is closed
// before the error returns (badConfig's contract).
func validateConfig(cfg Config) error {
	if cfg.Nodes <= 0 {
		return badConfig(cfg, "Nodes", "must be positive, got %d", cfg.Nodes)
	}
	if cfg.K < 1 || cfg.K > cfg.Nodes {
		return badConfig(cfg, "K", "must satisfy 1 <= K <= Nodes, got K=%d Nodes=%d", cfg.K, cfg.Nodes)
	}
	if !(cfg.Epsilon >= 0) || cfg.Epsilon >= 1 {
		return badConfig(cfg, "Epsilon", "must satisfy 0 <= Epsilon < 1, got %v", cfg.Epsilon)
	}
	if cfg.Concurrent && cfg.Transport != nil {
		return badConfig(cfg, "Transport", "mutually exclusive with Concurrent")
	}
	if cfg.Shards < 0 || cfg.Shards > cfg.Nodes {
		return badConfig(cfg, "Shards", "must satisfy 0 <= Shards <= Nodes, got Shards=%d Nodes=%d", cfg.Shards, cfg.Nodes)
	}
	if cfg.Shards > 0 && (cfg.Concurrent || cfg.Transport != nil) {
		return badConfig(cfg, "Shards", "mutually exclusive with Concurrent and Transport")
	}
	if !cfg.Tree.zero() {
		if cfg.Tree.Branch < 2 {
			return badConfig(cfg, "Tree", "branch must be at least 2, got %d", cfg.Tree.Branch)
		}
		if cfg.Tree.Depth < 1 {
			return badConfig(cfg, "Tree", "depth must be at least 1, got %d", cfg.Tree.Depth)
		}
		leaves, ok := cfg.Tree.leaves()
		if !ok {
			return badConfig(cfg, "Tree", "%d^%d leaves overflow", cfg.Tree.Branch, cfg.Tree.Depth)
		}
		if leaves > cfg.Nodes {
			return badConfig(cfg, "Tree", "%d^%d = %d leaf shards exceed Nodes=%d", cfg.Tree.Branch, cfg.Tree.Depth, leaves, cfg.Nodes)
		}
		if cfg.Concurrent || cfg.Transport != nil {
			return badConfig(cfg, "Tree", "mutually exclusive with Concurrent and Transport")
		}
		if cfg.Shards != 0 && cfg.Shards != leaves {
			return badConfig(cfg, "Tree", "Shards=%d disagrees with %d^%d = %d leaves", cfg.Shards, cfg.Tree.Branch, cfg.Tree.Depth, leaves)
		}
	}
	if cfg.Pipeline > PipelineOff {
		return badConfig(cfg, "Pipeline", "unknown mode %d", cfg.Pipeline)
	}
	if err := validateCheckpoint(cfg); err != nil {
		return err
	}
	return validateIngest(cfg)
}

// New validates cfg and creates a Monitor. A rejected configuration is
// reported as a *ConfigError naming the offending field; New never
// panics, and a Transport it took ownership of is closed on every error
// path.
func New(cfg Config) (*Monitor, error) {
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	m := &Monitor{cfg: cfg, maxVal: maxValueFor(cfg.Nodes, cfg.DistinctValues)}
	switch {
	case !cfg.Tree.zero():
		eng, err := shardrun.NewLoopbackTree(shardrun.Config{
			N: cfg.Nodes, K: cfg.K, Seed: cfg.Seed,
			DistinctValues: cfg.DistinctValues, Epsilon: cfg.Epsilon,
			Lockstep: cfg.Pipeline == PipelineOff,
			Redial:   cfg.redialInternal(), RetryBudget: cfg.RetryBudget,
			RetryBackoff: cfg.RetryBackoff, OnEvent: cfg.onEventInternal(),
		}, cfg.Tree.Branch, cfg.Tree.Depth)
		if err != nil {
			return nil, err
		}
		m.shard = eng
	case cfg.Shards > 0:
		eng, err := shardrun.NewLoopback(shardrun.Config{
			N: cfg.Nodes, K: cfg.K, Seed: cfg.Seed,
			DistinctValues: cfg.DistinctValues, Epsilon: cfg.Epsilon,
			Lockstep: cfg.Pipeline == PipelineOff,
			Redial:   cfg.redialInternal(), RetryBudget: cfg.RetryBudget,
			RetryBackoff: cfg.RetryBackoff, OnEvent: cfg.onEventInternal(),
		}, cfg.Shards)
		if err != nil {
			return nil, err
		}
		m.shard = eng
	case cfg.Transport != nil:
		eng, err := newNetEngine(cfg)
		if err != nil {
			// The transport's links are unusable after a failed (or never
			// attempted) handshake; release them and their serve loops so
			// a retrying caller does not accumulate goroutines.
			cfg.Transport.Close()
			return nil, err
		}
		m.net = eng
	case cfg.Concurrent:
		m.conc = runtime.New(runtime.Config{N: cfg.Nodes, K: cfg.K, Seed: cfg.Seed, DistinctValues: cfg.DistinctValues, Epsilon: cfg.Epsilon})
	default:
		m.seq = core.New(core.Config{N: cfg.Nodes, K: cfg.K, Seed: cfg.Seed, DistinctValues: cfg.DistinctValues, Epsilon: cfg.Epsilon})
	}
	if cfg.Ingest.QueueDepth > 0 {
		if err := m.startIngest(); err != nil {
			m.Close()
			return nil, err
		}
	}
	return m, nil
}

// maxValueFor computes the value-domain bound of a monitor configuration:
// the key-injection capacity for the default tie-break mode (which
// shrinks with the node count, since keys are value·Nodes + tiebreak) or
// the sentinel-free int64 range when the caller promised distinct values.
// The single definition lives in order.MaxValueFor so the public boundary
// and the engine-side checks cannot disagree.
func maxValueFor(nodes int, distinct bool) int64 {
	return order.MaxValueFor(nodes, distinct)
}

// MaxValue returns the largest observation magnitude the monitor accepts;
// symmetrically, -MaxValue is the smallest. Values outside
// [-MaxValue, MaxValue] make Observe and ObserveDelta return an error —
// never panic, never wrap — because the order-preserving key injection
// key = value·Nodes + tiebreak would overflow int64 (the bound therefore
// shrinks as Nodes grows; it is above 4.6·10¹⁴ even at twenty thousand
// nodes). With DistinctValues set, keys are the raw values and only the
// two extreme magnitudes that collide with the internal ±∞ sentinels are
// excluded. Callers ingesting unbounded counters should clamp to
// [-MaxValue, MaxValue] before observing.
func (m *Monitor) MaxValue() int64 { return m.maxVal }

// checkValues validates one step's observations against the value
// domain before any engine state is touched, so a rejected step leaves
// the monitor fully usable. ids supplies the node id per value for error
// reporting (nil means vals[i] belongs to node i). Both public monitors
// share this one check so their rejection semantics cannot diverge.
func checkValues(maxVal int64, ids []int, vals []int64) error {
	for j, v := range vals {
		if v > maxVal || v < -maxVal {
			id := j
			if ids != nil {
				id = ids[j]
			}
			return fmt.Errorf("topk: node %d value %d outside the monitor's value domain [-%d, %d]; clamp to Monitor.MaxValue", id, v, maxVal, maxVal)
		}
	}
	return nil
}

// Observe feeds one time step of observations (vals[i] is node i's new
// value, len(vals) == Nodes) and returns the node ids currently holding
// the K largest values, in ascending id order. The returned slice is a
// read-only view owned by the monitor, valid until the next step; use
// AppendTop to retain a copy. It returns an error for a wrong-length
// input, a value outside [-MaxValue, MaxValue] (the step is then rejected
// atomically: no engine state changes and the monitor stays usable), a
// closed monitor, or a networked/sharded engine that is terminally
// degraded (recovery abandoned; the engine then stays wedged on its
// last-good report and every further observation returns the same error).
// A recoverable peer failure does not error: the step reports the
// last-good set, Health().Degraded turns true, and the next observation
// call runs recovery. No input can panic the monitor.
//
// In asynchronous mode (Config.Ingest.QueueDepth > 0) Observe validates
// the step the same way, stages it on the ingest queue and returns a
// nil report immediately — the protocol step runs in the background,
// and later observations of the same node may coalesce with this one.
// Read reports through Top or AppendTop, after a Drain for
// read-your-writes; a full queue blocks, drops the oldest staged
// update, or returns ErrQueueFull per the configured overflow policy,
// and a terminal background failure is returned here and from Drain.
func (m *Monitor) Observe(vals []int64) ([]int, error) {
	if len(vals) != m.cfg.Nodes {
		return nil, fmt.Errorf("topk: observed %d values for %d nodes", len(vals), m.cfg.Nodes)
	}
	if err := checkValues(m.maxVal, nil, vals); err != nil {
		return nil, err
	}
	if m.drv != nil {
		return nil, m.enqueue(m.allIDs, vals)
	}
	var top []int
	switch {
	case m.seq != nil:
		top = m.seq.Observe(vals)
	case m.conc != nil:
		top = m.conc.Observe(vals)
	case m.net != nil:
		top = m.net.Observe(vals)
		if err := m.net.Err(); err != nil {
			return nil, err
		}
	case m.shard != nil:
		top = m.shard.Observe(vals)
		if err := m.shard.Err(); err != nil {
			return nil, err
		}
	default:
		return nil, errors.New("topk: monitor is closed")
	}
	m.maybeCheckpoint()
	return top, nil
}

// ObserveDelta feeds one time step in which only the streams listed in ids
// changed: vals[j] is node ids[j]'s new value, every other node repeats
// its previous value (0 before its first observation). ids must be
// strictly increasing; both slices may be empty (a step where nothing
// changed) and are not retained, so callers may reuse their buffers. The
// returned slice is a read-only view, and errors behave as with Observe:
// bad ids or a value outside [-MaxValue, MaxValue] reject the step
// atomically before any engine state changes, so a long-running delta
// feed whose accumulated per-node totals drift past the value domain gets
// a descriptive error on exactly the step that crosses it — never a
// panic, never a silently wrapped key.
//
// A violation-free delta step costs O(len(ids)) work and zero heap
// allocations on the sequential engine, independent of Nodes.
//
// In asynchronous mode the call stages the delta and returns a nil
// report immediately, exactly as Observe; since the staged slices are
// copied into the per-node queue, callers may reuse their buffers as
// in synchronous mode.
func (m *Monitor) ObserveDelta(ids []int, vals []int64) ([]int, error) {
	if len(ids) != len(vals) {
		return nil, fmt.Errorf("topk: delta has %d ids but %d values", len(ids), len(vals))
	}
	prev := -1
	for _, id := range ids {
		if id <= prev || id >= m.cfg.Nodes {
			return nil, fmt.Errorf("topk: delta ids must be strictly increasing in [0, %d)", m.cfg.Nodes)
		}
		prev = id
	}
	if err := checkValues(m.maxVal, ids, vals); err != nil {
		return nil, err
	}
	if m.drv != nil {
		return nil, m.enqueue(ids, vals)
	}
	var top []int
	switch {
	case m.seq != nil:
		top = m.seq.ObserveDelta(ids, vals)
	case m.conc != nil:
		top = m.conc.ObserveDelta(ids, vals)
	case m.net != nil:
		top = m.net.ObserveDelta(ids, vals)
		if err := m.net.Err(); err != nil {
			return nil, err
		}
	case m.shard != nil:
		top = m.shard.ObserveDelta(ids, vals)
		if err := m.shard.Err(); err != nil {
			return nil, err
		}
	default:
		return nil, errors.New("topk: monitor is closed")
	}
	m.maybeCheckpoint()
	return top, nil
}

// Top returns the most recently reported top-k ids without consuming a
// step, as a read-only view (see Observe). Before the first observation
// it returns an empty slice. In asynchronous mode it returns a fresh
// caller-owned copy instead of a view — the background worker may
// invalidate a view at any time — reflecting the latest applied step
// (every staged observation, after a Drain).
func (m *Monitor) Top() []int {
	if m.drv != nil {
		return m.AppendTop(nil)
	}
	switch {
	case m.seq != nil:
		return m.seq.Top()
	case m.conc != nil:
		return m.conc.Top()
	case m.net != nil:
		return m.net.Top()
	case m.shard != nil:
		return m.shard.Top()
	default:
		return nil
	}
}

// AppendTop appends the most recently reported top-k ids (ascending) to
// dst and returns the extended slice. With a dst of capacity >= K it
// performs no allocation.
func (m *Monitor) AppendTop(dst []int) []int {
	if m.drv != nil {
		m.engineMu.Lock()
		defer m.engineMu.Unlock()
	}
	switch {
	case m.seq != nil:
		return m.seq.AppendTop(dst)
	case m.conc != nil:
		return m.conc.AppendTop(dst)
	case m.net != nil:
		return m.net.AppendTop(dst)
	case m.shard != nil:
		return m.shard.AppendTop(dst)
	default:
		return dst
	}
}

// Counts returns the total messages exchanged so far.
func (m *Monitor) Counts() Counts {
	if m.drv != nil {
		m.engineMu.Lock()
		defer m.engineMu.Unlock()
	}
	var c comm.Counts
	switch {
	case m.seq != nil:
		c = m.seq.Counts()
	case m.conc != nil:
		c = m.conc.Counts()
	case m.net != nil:
		c = m.net.Counts()
	case m.shard != nil:
		c = m.shard.Counts()
	}
	return Counts{Up: c.Up, Down: c.Down, Broadcast: c.Bcast}
}

// Phases returns the per-phase message breakdown.
func (m *Monitor) Phases() PhaseCounts {
	if m.drv != nil {
		m.engineMu.Lock()
		defer m.engineMu.Unlock()
	}
	var led *comm.Ledger
	switch {
	case m.seq != nil:
		led = m.seq.Ledger()
	case m.conc != nil:
		led = m.conc.Ledger()
	case m.net != nil:
		led = m.net.Ledger()
	case m.shard != nil:
		led = m.shard.Ledger()
	default:
		return PhaseCounts{}
	}
	conv := func(c comm.Counts) Counts { return Counts{Up: c.Up, Down: c.Down, Broadcast: c.Bcast} }
	return PhaseCounts{
		Violation: conv(led.PhaseCounts(comm.PhaseViolation)),
		Handler:   conv(led.PhaseCounts(comm.PhaseHandler)),
		Reset:     conv(led.PhaseCounts(comm.PhaseReset)),
	}
}

// Bytes reports the encoded size of the charged messages, by kind. Every
// counted message has a canonical wire encoding (a bid carries a node id
// and a key, a broadcast carries a round number or filter bound and a
// key); Bytes sums those exact encoded lengths, which is the quantity the
// paper's Theorem 4.2 bounds per Top-k change. All engines report
// identical Bytes for the same seed; the networked engine's additional
// framing overhead appears in TransportStats instead.
type Bytes struct {
	// Up counts node-to-coordinator bytes.
	Up int64
	// Down counts coordinator-to-single-node bytes.
	Down int64
	// Broadcast counts coordinator broadcast bytes.
	Broadcast int64
}

// Total returns the overall charged byte volume.
func (b Bytes) Total() int64 { return b.Up + b.Down + b.Broadcast }

// PhaseBytes breaks the charged bytes down by algorithm phase, mirroring
// PhaseCounts.
type PhaseBytes struct {
	Violation Bytes
	Handler   Bytes
	Reset     Bytes
}

// Bytes returns the total charged model bytes exchanged so far.
func (m *Monitor) Bytes() Bytes {
	if m.drv != nil {
		m.engineMu.Lock()
		defer m.engineMu.Unlock()
	}
	var b comm.Bytes
	switch {
	case m.seq != nil:
		b = m.seq.Ledger().TotalBytes()
	case m.conc != nil:
		b = m.conc.Ledger().TotalBytes()
	case m.net != nil:
		b = m.net.Ledger().TotalBytes()
	case m.shard != nil:
		b = m.shard.Ledger().TotalBytes()
	}
	return Bytes{Up: b.Up, Down: b.Down, Broadcast: b.Bcast}
}

// BytesByPhase returns the per-phase charged byte breakdown.
func (m *Monitor) BytesByPhase() PhaseBytes {
	if m.drv != nil {
		m.engineMu.Lock()
		defer m.engineMu.Unlock()
	}
	var led *comm.Ledger
	switch {
	case m.seq != nil:
		led = m.seq.Ledger()
	case m.conc != nil:
		led = m.conc.Ledger()
	case m.net != nil:
		led = m.net.Ledger()
	case m.shard != nil:
		led = m.shard.Ledger()
	default:
		return PhaseBytes{}
	}
	conv := func(b comm.Bytes) Bytes { return Bytes{Up: b.Up, Down: b.Down, Broadcast: b.Bcast} }
	return PhaseBytes{
		Violation: conv(led.PhaseBytes(comm.PhaseViolation)),
		Handler:   conv(led.PhaseBytes(comm.PhaseHandler)),
		Reset:     conv(led.PhaseBytes(comm.PhaseReset)),
	}
}

// TransportStats returns the frames and framed bytes that crossed the
// links of a networked or sharded monitor, control plane included. The
// in-process engines report the zero value.
func (m *Monitor) TransportStats() TransportStats {
	if m.drv != nil {
		m.engineMu.Lock()
		defer m.engineMu.Unlock()
	}
	var s transport.LinkStats
	switch {
	case m.net != nil:
		s = m.net.TransportStats()
	case m.shard != nil:
		s = m.shard.TransportStats()
	default:
		return TransportStats{}
	}
	return TransportStats{
		SentFrames: s.SentFrames, SentBytes: s.SentBytes,
		RecvFrames: s.RecvFrames, RecvBytes: s.RecvBytes,
	}
}

// Overhead returns the root↔shard coordination traffic of a sharded
// monitor: Down counts root→shard command frames, Up counts shard→root
// replies and digests, with Bytes carrying their encoded sizes. This is
// the cost of splitting the coordinator, kept separate from the
// algorithm's own message ledger (which at Shards == 1 equals the
// sequential engine's exactly). Non-sharded monitors report zeroes.
func (m *Monitor) Overhead() (Counts, Bytes) {
	if m.drv != nil {
		m.engineMu.Lock()
		defer m.engineMu.Unlock()
	}
	if m.shard == nil {
		return Counts{}, Bytes{}
	}
	c, b := m.shard.Overhead(), m.shard.OverheadBytes()
	return Counts{Up: c.Up, Down: c.Down, Broadcast: c.Bcast},
		Bytes{Up: b.Up, Down: b.Down, Broadcast: b.Bcast}
}

// LevelIO summarizes the coordination traffic of one coordinator-tree
// level: frames and encoded bytes sent down to (and received up from)
// that level's children.
type LevelIO struct {
	Down, Up           int64
	DownBytes, UpBytes int64
}

// TreeStats is the diagnostic profile of a hierarchical monitor (see
// Monitor.TreeStats).
type TreeStats struct {
	// Absorbs[l] counts, across all leaves, the observations that left
	// the level-l tightened tolerance band (level 0 is the tightest, at
	// the leaves). Absorbs[l] - Absorbs[l+1] of those exits were absorbed
	// by the next wider band without reaching the root's ε filter; the
	// remainder of Absorbs[len-1] escalated to a real filter violation.
	// Empty unless the monitor runs a tree of depth >= 2 with a positive
	// Epsilon.
	Absorbs []int64
	// Levels holds one coordination-traffic summary per tree level,
	// deepest interior level first, ending with the root's own overhead
	// ledger.
	Levels []LevelIO
}

// TreeStats polls a sharded or tree monitor's diagnostic plane: per-level
// band-absorption counters (ε mode at depth >= 2) and per-level
// coordination traffic, ending with the root's own overhead ledger. The
// poll itself is free — it is charged to no ledger, appearing only in
// TransportStats — so polling does not perturb the numbers it reports.
// Non-sharded monitors return the zero value; a poll interrupted by a
// link failure returns an error and leaves recovery to the next
// observation call.
func (m *Monitor) TreeStats() (TreeStats, error) {
	if m.drv != nil {
		m.engineMu.Lock()
		defer m.engineMu.Unlock()
	}
	if m.shard == nil {
		return TreeStats{}, nil
	}
	ws, err := m.shard.TreeStats()
	if err != nil {
		return TreeStats{}, err
	}
	out := TreeStats{Absorbs: ws.Absorbs}
	for _, lv := range ws.Levels {
		out.Levels = append(out.Levels, LevelIO{
			Down: lv.Down, Up: lv.Up, DownBytes: lv.DownBytes, UpBytes: lv.UpBytes,
		})
	}
	return out, nil
}

// Stats returns behavioural counters. Every engine maintains them in the
// shared coordinator core, so they are identical across engines for the
// same seed.
func (m *Monitor) Stats() Stats {
	if m.drv != nil {
		m.engineMu.Lock()
		defer m.engineMu.Unlock()
	}
	var s coord.Stats
	switch {
	case m.seq != nil:
		s = m.seq.Stats()
	case m.conc != nil:
		s = m.conc.Stats()
	case m.net != nil:
		s = m.net.Stats()
	case m.shard != nil:
		s = m.shard.Stats()
	}
	return Stats{Steps: s.Steps, ViolationSteps: s.ViolationSteps, Resets: s.Resets, TopChanges: s.TopChanges}
}

// Close releases the goroutines of a concurrent monitor and the peers of
// a networked or sharded one, stopping the ingest worker of an
// asynchronous monitor first (observations still staged are discarded —
// Drain before Close for a graceful flush). It is a no-op for the
// synchronous sequential engine and idempotent everywhere. The monitor
// cannot observe after Close; in asynchronous mode it must be the last
// call, after every producer goroutine has stopped.
func (m *Monitor) Close() {
	if m.drv != nil {
		m.drv.Close()
		m.drv = nil
	}
	if m.conc != nil {
		m.conc.Close()
		m.conc = nil
	}
	if m.net != nil {
		m.net.Close()
		m.net = nil
		if m.cfg.Transport != nil {
			m.cfg.Transport.Close()
		}
	}
	if m.shard != nil {
		m.shard.Close()
		m.shard = nil
	}
	m.seq = nil
}

// Oracle computes the exact top-k ids (ascending) of a single observation
// vector with the same deterministic tie-break the Monitor uses (equal
// values: smaller id wins). It is a convenience for verification and for
// batch use; it involves no communication model. Like Observe, it rejects
// values outside the injection's capacity for len(vals) nodes with an
// error instead of panicking.
func Oracle(vals []int64, k int) ([]int, error) {
	if len(vals) == 0 {
		return nil, errors.New("topk: empty observation vector")
	}
	if k < 1 || k > len(vals) {
		return nil, fmt.Errorf("topk: k must satisfy 1 <= k <= %d, got %d", len(vals), k)
	}
	if err := checkValues(order.MaxValueFor(len(vals), false), nil, vals); err != nil {
		return nil, err
	}
	return sim.Oracle(vals, k), nil
}
