package topk

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/rng"
)

// ckptWalk drives a deterministic random walk shared by a monitor pair.
func ckptWalk(r *rng.RNG, vals []int64) {
	for i := range vals {
		vals[i] += int64(r.Intn(9)) - 4
	}
}

// TestCheckpointRestoreBitIdentical is the determinism pin of the
// checkpoint tentpole: a sequential or concurrent monitor restored from
// an idle-point checkpoint resumes bit-identically — reports, message
// counts, charged bytes, per-phase ledgers, stats, and the randomness
// streams driving them — to an uninterrupted twin, at ε=0 and ε>0.
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		for _, eps := range []float64{0, 0.05} {
			cfg := Config{Nodes: 24, K: 4, Seed: 11, Epsilon: eps, Concurrent: concurrent}
			twin, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer twin.Close()

			store := MemCheckpoints()
			live := cfg
			live.Checkpoint = Checkpoint{Store: store, Every: 5}
			mon, err := New(live)
			if err != nil {
				t.Fatal(err)
			}

			wr := rng.New(99, 1)
			vals := make([]int64, cfg.Nodes)
			for step := 0; step < 37; step++ {
				ckptWalk(wr, vals)
				if _, err := twin.Observe(vals); err != nil {
					t.Fatal(err)
				}
				if _, err := mon.Observe(vals); err != nil {
					t.Fatal(err)
				}
			}
			gen, err := mon.Checkpoint(context.Background())
			if err != nil {
				t.Fatalf("conc=%v eps=%v: checkpoint: %v", concurrent, eps, err)
			}
			if st := mon.CheckpointStats(); st.LastGen != gen || st.Saves < 1 || st.LastErr != nil {
				t.Fatalf("conc=%v eps=%v: stats %+v after gen %d", concurrent, eps, st, gen)
			}
			mon.Close() // the "crash": the restored monitor must not need it

			restored, err := Restore(store, live)
			if err != nil {
				t.Fatalf("conc=%v eps=%v: restore: %v", concurrent, eps, err)
			}
			defer restored.Close()
			if st := restored.CheckpointStats(); st.LastGen != gen {
				t.Fatalf("conc=%v eps=%v: restored LastGen %d, want %d", concurrent, eps, st.LastGen, gen)
			}

			for step := 0; step < 50; step++ {
				ckptWalk(wr, vals)
				want, err := twin.Observe(vals)
				if err != nil {
					t.Fatal(err)
				}
				got, err := restored.Observe(vals)
				if err != nil {
					t.Fatal(err)
				}
				if !equalIDs(want, got) {
					t.Fatalf("conc=%v eps=%v step %d: report %v, twin %v", concurrent, eps, step, got, want)
				}
			}
			if twin.Counts() != restored.Counts() || twin.Bytes() != restored.Bytes() {
				t.Fatalf("conc=%v eps=%v: ledgers diverged: twin %v/%v, restored %v/%v",
					concurrent, eps, twin.Counts(), twin.Bytes(), restored.Counts(), restored.Bytes())
			}
			if twin.Phases() != restored.Phases() || twin.BytesByPhase() != restored.BytesByPhase() {
				t.Fatalf("conc=%v eps=%v: phase ledgers diverged", concurrent, eps)
			}
			if twin.Stats() != restored.Stats() {
				t.Fatalf("conc=%v eps=%v: stats diverged: twin %+v, restored %+v",
					concurrent, eps, twin.Stats(), restored.Stats())
			}
		}
	}
}

// ckptEngines enumerates one configuration per engine for the chaos
// suites. The returned Config carries no Transport; net configurations
// get a fresh Loopback per construction via the transport flag.
var ckptEngines = []struct {
	name string
	net  bool // needs a fresh Loopback transport per construction
	mut  func(*Config)
}{
	{"seq", false, func(*Config) {}},
	{"conc", false, func(c *Config) { c.Concurrent = true }},
	{"net", true, func(*Config) {}},
	{"shards", false, func(c *Config) { c.Shards = 3 }},
	{"tree", false, func(c *Config) { c.Tree = Tree{Branch: 2, Depth: 2} }},
}

// TestCheckpointCrashRestartChaos is the chaos pin: on every engine,
// kill the coordinator at a seeded random step (abandoning the process
// state mid-run, checkpoints included), restore from the store, and
// require the restored monitor to report oracle-exact top-k sets from
// the first post-restore step on — never a hang, never a panic, never
// stale data.
func TestCheckpointCrashRestartChaos(t *testing.T) {
	for _, eng := range ckptEngines {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			for trial := uint64(0); trial < 4; trial++ {
				cfg := Config{Nodes: 24, K: 4, Seed: 7 + trial}
				eng.mut(&cfg)
				store := MemCheckpoints()
				cfg.Checkpoint = Checkpoint{Store: store, Every: 3}
				if eng.net {
					cfg.Transport = Loopback(3)
				}
				mon, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}

				tr := rng.New(1000+trial, 5)
				wr := rng.New(2000+trial, 7)
				vals := make([]int64, cfg.Nodes)
				killStep := 2 + tr.Intn(30)
				for step := 0; step < killStep; step++ {
					ckptWalk(wr, vals)
					if _, err := mon.Observe(vals); err != nil {
						t.Fatalf("trial %d step %d: %v", trial, step, err)
					}
				}
				// The crash: the old coordinator is abandoned mid-run.
				// (Close at cleanup only reclaims test goroutines; the
				// restored monitor must never depend on it.)
				t.Cleanup(mon.Close)

				if eng.net {
					cfg.Transport = Loopback(3)
				}
				restored, err := Restore(store, cfg)
				if errors.Is(err, ErrNoCheckpoint) {
					// Killed before the first checkpoint boundary: a fresh
					// start is the documented recovery.
					if eng.net {
						cfg.Transport = Loopback(3)
					}
					restored, err = New(cfg)
				}
				if err != nil {
					t.Fatalf("trial %d (kill at %d): restore: %v", trial, killStep, err)
				}
				defer restored.Close()

				for step := 0; step < 25; step++ {
					ckptWalk(wr, vals)
					got, err := restored.Observe(vals)
					if err != nil {
						t.Fatalf("trial %d post-restore step %d: %v", trial, step, err)
					}
					want, err := Oracle(vals, cfg.K)
					if err != nil {
						t.Fatal(err)
					}
					if !equalIDs(want, got) {
						t.Fatalf("trial %d (kill at %d) post-restore step %d: report %v, oracle %v",
							trial, killStep, step, got, want)
					}
				}
				if h := restored.Health(); h.Terminal != nil || h.Degraded {
					t.Fatalf("trial %d: restored monitor unhealthy: %+v", trial, h)
				}
			}
		})
	}
}

// TestCheckpointMidWriteCrash pins the torn-write path end to end: the
// store dies mid-Save (persisting only a prefix of the frame), and
// Restore must fall back to the previous intact generation — never
// restore from the torn frame — and still re-converge to the oracle.
func TestCheckpointMidWriteCrash(t *testing.T) {
	for _, eng := range ckptEngines {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			cfg := Config{Nodes: 24, K: 4, Seed: 21}
			eng.mut(&cfg)
			inner := ckpt.NewMem()
			faulty := ckpt.NewFaulty(inner, ckpt.FaultPlan{KillAt: 3, TornBytes: 11})
			cfg.Checkpoint = Checkpoint{Store: faulty, Every: 2}
			if eng.net {
				cfg.Transport = Loopback(3)
			}
			mon, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}

			wr := rng.New(31, 9)
			vals := make([]int64, cfg.Nodes)
			for step := 0; !faulty.Killed(); step++ {
				if step > 1000 {
					t.Fatal("fault plan never fired")
				}
				ckptWalk(wr, vals)
				if _, err := mon.Observe(vals); err != nil {
					t.Fatal(err)
				}
			}
			if st := mon.CheckpointStats(); st.LastErr == nil || !errors.Is(st.LastErr, ckpt.ErrKilled) {
				t.Fatalf("stats after kill: %+v", mon.CheckpointStats())
			}
			t.Cleanup(mon.Close)

			if eng.net {
				cfg.Transport = Loopback(3)
			}
			restored, err := Restore(inner, cfg)
			if err != nil {
				t.Fatalf("restore after torn write: %v", err)
			}
			defer restored.Close()
			// The torn generation 3 must have been skipped for intact 2.
			if st := restored.CheckpointStats(); st.LastGen != 2 {
				t.Fatalf("restored from generation %d, want fallback to 2", st.LastGen)
			}
			for step := 0; step < 20; step++ {
				ckptWalk(wr, vals)
				got, err := restored.Observe(vals)
				if err != nil {
					t.Fatal(err)
				}
				want, err := Oracle(vals, cfg.K)
				if err != nil {
					t.Fatal(err)
				}
				if !equalIDs(want, got) {
					t.Fatalf("post-restore step %d: report %v, oracle %v", step, got, want)
				}
			}
		})
	}
}

// TestRestoreRejects pins that Restore never rebuilds a monitor from a
// frame that does not match the configuration — and that the failure
// vocabulary is typed: *RestoreError for mismatches, the documented
// sentinels for store-level failures, *ConfigError for an invalid cfg.
func TestRestoreRejects(t *testing.T) {
	base := Config{Nodes: 8, K: 2, Seed: 3}
	store := MemCheckpoints()
	mon, err := New(Config{Nodes: 8, K: 2, Seed: 3, Checkpoint: Checkpoint{Store: store}})
	if err != nil {
		t.Fatal(err)
	}
	vals := []int64{5, 1, 8, 2, 9, 3, 7, 4}
	if _, err := mon.Observe(vals); err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	mon.Close()

	if _, err := Restore(nil, base); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := Restore(MemCheckpoints(), base); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store: %v, want ErrNoCheckpoint", err)
	}

	corrupt := ckpt.NewMem()
	if err := corrupt.Save(1, []byte("not a checkpoint frame")); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(corrupt, base); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("corrupt-only store: %v, want ErrCorruptCheckpoint", err)
	}

	mismatches := []Config{
		{Nodes: 8, K: 2, Seed: 4},                   // seed
		{Nodes: 8, K: 2, Seed: 3, Concurrent: true}, // engine kind
		{Nodes: 8, K: 2, Seed: 3, Shards: 2},        // engine kind
		{Nodes: 8, K: 2, Seed: 3, DistinctValues: true},
		{Nodes: 9, K: 2, Seed: 3},                // fingerprint in the machine frame
		{Nodes: 8, K: 3, Seed: 3},                // fingerprint in the machine frame
		{Nodes: 8, K: 2, Seed: 3, Epsilon: 0.25}, // fingerprint in the machine frame
	}
	for i, bad := range mismatches {
		_, err := Restore(store, bad)
		if err == nil {
			t.Fatalf("case %d: mismatched config %+v accepted", i, bad)
		}
		var re *RestoreError
		if !errors.As(err, &re) {
			t.Fatalf("case %d: error %v is not a *RestoreError", i, err)
		}
	}

	var ce *ConfigError
	if _, err := Restore(store, Config{Nodes: 0, K: 1}); !errors.As(err, &ce) {
		t.Fatalf("invalid cfg: %v, want *ConfigError", err)
	}
}

// TestCheckpointAsync pins the composition with asynchronous ingestion:
// Checkpoint drains the queue first (the frame reflects every staged
// observation), auto-checkpoints run on the worker under the engine
// mutex, and a restored async monitor serves correct reports.
func TestCheckpointAsync(t *testing.T) {
	store := MemCheckpoints()
	cfg := Config{
		Nodes: 16, K: 3, Seed: 5,
		Ingest:     Ingest{QueueDepth: 16},
		Checkpoint: Checkpoint{Store: store, Every: 4},
	}
	mon, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wr := rng.New(77, 3)
	vals := make([]int64, cfg.Nodes)
	for step := 0; step < 30; step++ {
		ckptWalk(wr, vals)
		if _, err := mon.Observe(vals); err != nil {
			t.Fatal(err)
		}
	}
	gen, err := mon.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gen == 0 {
		t.Fatal("manual checkpoint returned generation 0")
	}
	// The drained checkpoint reflects all 30 steps: the restored monitor
	// reports the same top set the live one does after its barrier.
	want := mon.Top()
	mon.Close()

	restored, err := Restore(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got := restored.Top(); !equalIDs(want, got) {
		t.Fatalf("restored Top %v, want %v", got, want)
	}
	for step := 0; step < 20; step++ {
		ckptWalk(wr, vals)
		if _, err := restored.Observe(vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := restored.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	wantTop, err := Oracle(vals, cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Top(); !equalIDs(wantTop, got) {
		t.Fatalf("post-restore async Top %v, oracle %v", got, wantTop)
	}
}

// TestCheckpointCrashRestartSoak hammers the crash-restart cycle with
// concurrent producers under the race detector: an async monitor
// auto-checkpoints while four goroutines feed it, is abandoned at a
// random moment, and the next incarnation restores and keeps serving.
func TestCheckpointCrashRestartSoak(t *testing.T) {
	store := MemCheckpoints()
	cfg := Config{
		Nodes: 32, K: 4, Seed: 13,
		Ingest:     Ingest{QueueDepth: 32},
		Checkpoint: Checkpoint{Store: store, Every: 2},
	}
	for round := 0; round < 5; round++ {
		var mon *Monitor
		var err error
		if round == 0 {
			mon, err = New(cfg)
		} else {
			mon, err = Restore(store, cfg)
			if errors.Is(err, ErrNoCheckpoint) {
				mon, err = New(cfg)
			}
		}
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				wr := rng.New(uint64(round*10+p), 15)
				vals := make([]int64, cfg.Nodes)
				for step := 0; step < 40; step++ {
					ckptWalk(wr, vals)
					if _, err := mon.Observe(vals); err != nil {
						t.Errorf("round %d producer %d: %v", round, p, err)
						return
					}
				}
			}(p)
		}
		wg.Wait()
		if _, err := mon.Checkpoint(context.Background()); err != nil {
			t.Fatalf("round %d: checkpoint: %v", round, err)
		}
		mon.Close() // reclaim the worker; the store alone carries state over
	}
}
