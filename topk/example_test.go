package topk_test

import (
	"fmt"

	"repro/topk"
)

// ExampleMonitor shows the minimal monitoring loop: create a monitor, feed
// one observation vector per time step, read the top-k set.
func ExampleMonitor() {
	mon, err := topk.New(topk.Config{Nodes: 4, K: 2, Seed: 42})
	if err != nil {
		panic(err)
	}
	steps := [][]int64{
		{10, 40, 20, 30}, // nodes 1 and 3 lead
		{11, 41, 21, 31}, // small changes: no communication needed
		{12, 42, 22, 32},
		{90, 42, 22, 32}, // node 0 takes over
	}
	for _, vals := range steps {
		top, err := mon.Observe(vals)
		if err != nil {
			panic(err)
		}
		fmt.Println(top)
	}
	// Output:
	// [1 3]
	// [1 3]
	// [1 3]
	// [0 1]
}

// ExampleMonitor_ObserveDelta shows sparse ingestion: after the first
// (dense) step only the streams that changed are fed in, so a quiet step
// costs work proportional to the change, not to the fleet size — and a
// step where nothing moved costs nothing at all.
func ExampleMonitor_ObserveDelta() {
	mon, err := topk.New(topk.Config{Nodes: 6, K: 2, Seed: 7})
	if err != nil {
		panic(err)
	}
	// Dense bootstrap: every node reports its starting value.
	top, err := mon.Observe([]int64{10, 60, 20, 50, 30, 40})
	if err != nil {
		panic(err)
	}
	fmt.Println(top)

	// Only node 4 moves — and it surges past everyone.
	top, err = mon.ObserveDelta([]int{4}, []int64{99})
	if err != nil {
		panic(err)
	}
	fmt.Println(top)

	// A step in which nothing changed is free.
	top, err = mon.ObserveDelta(nil, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(top)
	// Output:
	// [1 3]
	// [1 4]
	// [1 4]
}

// ExampleOracle demonstrates the offline helper with deterministic
// tie-breaking (equal values: smaller node id wins).
func ExampleOracle() {
	top, err := topk.Oracle([]int64{7, 7, 3, 9}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(top)
	// Output:
	// [0 3]
}

// ExampleOrderedMonitor tracks the exact ranking of the top-k (the
// paper's §5 extension): ids are reported largest-value-first.
func ExampleOrderedMonitor() {
	mon, err := topk.NewOrdered(topk.Config{Nodes: 4, K: 3, Seed: 1})
	if err != nil {
		panic(err)
	}
	ranking, err := mon.Observe([]int64{10, 40, 20, 30})
	if err != nil {
		panic(err)
	}
	fmt.Println(ranking)
	// Nodes 1 and 3 swap ranks; the board follows exactly.
	ranking, err = mon.Observe([]int64{10, 29, 20, 30})
	if err != nil {
		panic(err)
	}
	fmt.Println(ranking)
	// Output:
	// [1 3 2]
	// [3 1 2]
}
