package topk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/order"
	"repro/internal/sim"
)

// engineConfigs enumerates the four engine selections of the public API.
// Every boundary property must hold on all of them.
func engineConfigs(n, k int) map[string]Config {
	return map[string]Config{
		"seq":   {Nodes: n, K: k, Seed: 3},
		"conc":  {Nodes: n, K: k, Seed: 3, Concurrent: true},
		"net":   {Nodes: n, K: k, Seed: 3, Transport: Loopback(2)},
		"shard": {Nodes: n, K: k, Seed: 3, Shards: 2},
	}
}

// observeNoPanic calls Observe and converts any panic into a test
// failure, returning the method's normal results.
func observeNoPanic(t *testing.T, m *Monitor, vals []int64) (top []int, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Observe(%v) panicked: %v", vals, r)
		}
	}()
	return m.Observe(vals)
}

func observeDeltaNoPanic(t *testing.T, m *Monitor, ids []int, vals []int64) (top []int, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("ObserveDelta(%v, %v) panicked: %v", ids, vals, r)
		}
	}()
	return m.ObserveDelta(ids, vals)
}

// TestExtremeValuesErrorNotPanic is the regression test for the verified
// crash: Observe([]int64{math.MaxInt64, ...}) used to panic from deep
// inside order.Encode. Every engine must reject out-of-domain values with
// an error, leave the monitor fully usable, and accept the exact boundary
// magnitudes ±MaxValue.
func TestExtremeValuesErrorNotPanic(t *testing.T) {
	const n, k = 8, 3
	for name, cfg := range engineConfigs(n, k) {
		t.Run(name, func(t *testing.T) {
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			mv := m.MaxValue()
			if want := order.NewCodec(n).MaxValue(); mv != want {
				t.Fatalf("MaxValue() = %d, want %d", mv, want)
			}

			// The boundary magnitudes themselves are legal, including the
			// original crash vector with MaxInt64 replaced by MaxValue.
			legal := make([]int64, n)
			legal[0], legal[1] = mv, -mv
			top, err := observeNoPanic(t, m, legal)
			if err != nil {
				t.Fatalf("boundary values rejected: %v", err)
			}
			want, err := Oracle(legal, k)
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(top, want) {
				t.Fatalf("report %v, oracle %v", top, want)
			}

			countsBefore := m.Counts()
			stepsBefore := m.Stats().Steps
			for _, bad := range []int64{mv + 1, -mv - 1, math.MaxInt64, math.MinInt64} {
				vals := make([]int64, n)
				vals[2] = bad
				if _, err := observeNoPanic(t, m, vals); err == nil {
					t.Fatalf("value %d accepted", bad)
				}
				if _, err := observeDeltaNoPanic(t, m, []int{2}, []int64{bad}); err == nil {
					t.Fatalf("delta value %d accepted", bad)
				}
			}
			if m.Counts() != countsBefore || m.Stats().Steps != stepsBefore {
				t.Fatal("rejected steps advanced the monitor")
			}

			// The monitor keeps working after rejections, on both paths.
			if _, err := observeDeltaNoPanic(t, m, []int{2}, []int64{42}); err != nil {
				t.Fatalf("monitor wedged after rejected input: %v", err)
			}
			legal[2] = 42
			top, err = observeNoPanic(t, m, legal)
			if err != nil {
				t.Fatal(err)
			}
			if want, _ := Oracle(legal, k); !equalIDs(top, want) {
				t.Fatalf("post-rejection report %v, oracle %v", top, want)
			}
		})
	}
}

// TestExtremeValuesProperty drives every engine through randomized steps
// drawn from the extreme corners of int64 (±MaxValue, ±(MaxValue+1),
// MinInt64, MaxInt64, 0, small values) and asserts, against the oracle on
// the accepted state: in-domain steps report exactly, out-of-domain steps
// error without perturbing the trajectory, and nothing ever panics.
func TestExtremeValuesProperty(t *testing.T) {
	const n, k, steps = 6, 2, 120
	for name, cfg := range engineConfigs(n, k) {
		t.Run(name, func(t *testing.T) {
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			mv := m.MaxValue()
			pool := []int64{mv, -mv, mv + 1, -mv - 1, math.MaxInt64, math.MinInt64, 0, 1, -1, 1 << 20}
			rng := rand.New(rand.NewSource(99))
			state := make([]int64, n) // the accepted (applied) values
			vals := make([]int64, n)
			for s := 0; s < steps; s++ {
				legal := true
				for i := range vals {
					v := pool[rng.Intn(len(pool))]
					vals[i] = v
					if v > mv || v < -mv {
						legal = false
					}
				}
				top, err := observeNoPanic(t, m, vals)
				if !legal {
					if err == nil {
						t.Fatalf("step %d: out-of-domain vector accepted", s)
					}
					continue // state must be unchanged; verified by later exact steps
				}
				if err != nil {
					t.Fatalf("step %d: in-domain vector rejected: %v", s, err)
				}
				copy(state, vals)
				if want := sim.Oracle(state, k); !equalIDs(top, want) {
					t.Fatalf("step %d: report %v, oracle %v", s, top, want)
				}
			}
		})
	}
}

// TestDeltaOverflowRegression is the long-running-delta regression: a
// sparse feed whose per-node total keeps accumulating (doubling, here)
// must get a descriptive error on exactly the step that leaves the value
// domain — not a panic, not a silently wrapped key — and a caller that
// clamps to MaxValue, as the error suggests, continues cleanly.
func TestDeltaOverflowRegression(t *testing.T) {
	const n, k = 4, 1
	for name, cfg := range engineConfigs(n, k) {
		t.Run(name, func(t *testing.T) {
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			mv := m.MaxValue()
			total := int64(1)
			crossed := false
			for step := 0; step < 80 && !crossed; step++ {
				top, err := observeDeltaNoPanic(t, m, []int{1}, []int64{total})
				if total > mv {
					if err == nil {
						t.Fatalf("accumulated total %d past MaxValue %d accepted", total, mv)
					}
					crossed = true
					break
				}
				if err != nil {
					t.Fatalf("in-domain total %d rejected: %v", total, err)
				}
				if !equalIDs(top, []int{1}) {
					t.Fatalf("node 1 holds the only positive value, report %v", top)
				}
				if total > mv/2 {
					total = mv + 1 // next doubling would overflow int64 itself
				} else {
					total *= 2
				}
			}
			if !crossed {
				t.Fatal("walk never left the value domain")
			}
			// Clamping (the documented remedy) keeps the feed going.
			top, err := observeDeltaNoPanic(t, m, []int{1}, []int64{mv})
			if err != nil {
				t.Fatalf("clamped value rejected: %v", err)
			}
			if !equalIDs(top, []int{1}) {
				t.Fatalf("post-clamp report %v", top)
			}
		})
	}
}

// TestOracleBoundary pins the no-panic contract on the package-level
// Oracle helper.
func TestOracleBoundary(t *testing.T) {
	if _, err := Oracle([]int64{math.MaxInt64, 0, 0}, 1); err == nil {
		t.Fatal("Oracle accepted MaxInt64")
	}
	mv := order.NewCodec(3).MaxValue()
	top, err := Oracle([]int64{-mv, mv, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(top, []int{1}) {
		t.Fatalf("top = %v", top)
	}
}

// TestLoopbackNoPanic pins that a bad peer count surfaces as a New error
// (public methods and constructors must not panic on any input).
func TestLoopbackNoPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Loopback(0) path panicked: %v", r)
		}
	}()
	if _, err := New(Config{Nodes: 4, K: 2, Transport: Loopback(0)}); err == nil {
		t.Fatal("empty transport accepted")
	}
	if _, err := New(Config{Nodes: 4, K: 2, Transport: Loopback(-3)}); err == nil {
		t.Fatal("negative peer count accepted")
	}
}

// TestOrderedBoundary extends the no-panic contract to the ordered
// monitor.
func TestOrderedBoundary(t *testing.T) {
	m, err := NewOrdered(Config{Nodes: 4, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Observe([]int64{math.MaxInt64, 0, 0, 0}); err == nil {
		t.Fatal("ordered monitor accepted MaxInt64")
	}
	if _, err := m.Observe([]int64{m.MaxValue(), 0, 0, 0}); err != nil {
		t.Fatalf("ordered monitor rejected boundary value: %v", err)
	}
	for _, cfg := range []Config{
		{Nodes: 4, K: 2, Epsilon: 0.1},
		{Nodes: 4, K: 2, Shards: 2},
		{Nodes: 4, K: 2, Transport: Loopback(2)},
	} {
		if _, err := NewOrdered(cfg); err == nil {
			t.Fatalf("NewOrdered accepted unsupported config %+v", cfg)
		}
	}
}

// TestDistinctModeBoundary pins the DistinctValues value domain: the raw
// int64 range minus the two sentinel-colliding magnitudes.
func TestDistinctModeBoundary(t *testing.T) {
	m, err := New(Config{Nodes: 3, K: 1, Seed: 5, DistinctValues: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.MaxValue() != math.MaxInt64-1 {
		t.Fatalf("distinct MaxValue = %d", m.MaxValue())
	}
	for _, bad := range []int64{math.MaxInt64, math.MinInt64, math.MinInt64 + 1} {
		if _, err := m.Observe([]int64{bad, 2, 3}); err == nil {
			t.Fatalf("distinct mode accepted %d", bad)
		}
	}
	top, err := m.Observe([]int64{math.MaxInt64 - 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(top, []int{0}) {
		t.Fatalf("top = %v", top)
	}
}
