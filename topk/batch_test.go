package topk

import (
	"testing"

	"repro/internal/stream"
)

func TestRunTraceBasics(t *testing.T) {
	matrix := [][]int64{
		{1, 4, 2, 3},
		{1, 4, 2, 3},
		{9, 4, 2, 3}, // node 0 takes over
	}
	res, err := RunTrace(Config{K: 2, Seed: 5}, matrix) // Nodes inferred
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tops) != 3 {
		t.Fatalf("tops: %v", res.Tops)
	}
	if got := res.Tops[0]; got[0] != 1 || got[1] != 3 {
		t.Fatalf("step 0 top: %v", got)
	}
	if got := res.Tops[2]; got[0] != 0 || got[1] != 1 {
		t.Fatalf("step 2 top: %v", got)
	}
	if res.TopChanges != 1 {
		t.Fatalf("top changes: %d", res.TopChanges)
	}
	if res.Counts.Total() == 0 {
		t.Fatal("no communication counted")
	}
}

func TestRunTraceVerifiedAgainstOracle(t *testing.T) {
	src := stream.NewBursty(stream.BurstyConfig{N: 9, Seed: 6, Lo: 0, Hi: 1 << 20, Noise: 3, BurstProb: 0.05, BurstMax: 1 << 16})
	matrix := stream.Collect(src, 200)
	res, err := RunTrace(Config{Nodes: 9, K: 3, Seed: 7}, matrix)
	if err != nil {
		t.Fatal(err)
	}
	for s, row := range matrix {
		want, err := Oracle(row, 3)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Tops[s]
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d: got %v want %v", s, got, want)
			}
		}
	}
}

func TestRunTraceErrors(t *testing.T) {
	if _, err := RunTrace(Config{K: 1}, nil); err == nil {
		t.Fatal("empty trace should error")
	}
	if _, err := RunTrace(Config{Nodes: 2, K: 3}, [][]int64{{1, 2}}); err == nil {
		t.Fatal("bad k should error")
	}
	if _, err := RunTrace(Config{Nodes: 3, K: 1}, [][]int64{{1, 2}}); err == nil {
		t.Fatal("width mismatch should error")
	}
}

func TestRunTraceConcurrentEngine(t *testing.T) {
	matrix := [][]int64{{5, 1}, {5, 1}, {1, 5}}
	res, err := RunTrace(Config{K: 1, Seed: 8, Concurrent: true}, matrix)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tops[0][0] != 0 || res.Tops[2][0] != 1 {
		t.Fatalf("tops: %v", res.Tops)
	}
}
