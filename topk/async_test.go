package topk

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/stream"
)

func drainT(t *testing.T, m *Monitor) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestAsyncDrainEquivalence pins the tentpole's contract at the public
// boundary, per engine: an asynchronous monitor fed observe-then-Drain
// must be bit-identical — reports, message counts, charged bytes,
// per-phase breakdowns, stats — to a synchronous monitor of the same
// configuration fed the same trace, on both the dense and delta paths.
func TestAsyncDrainEquivalence(t *testing.T) {
	const n, k, steps = 16, 3, 120
	base := map[string]Config{
		"seq":   {Nodes: n, K: k, Seed: 3},
		"conc":  {Nodes: n, K: k, Seed: 3, Concurrent: true},
		"net":   {Nodes: n, K: k, Seed: 3, Transport: Loopback(2)},
		"shard": {Nodes: n, K: k, Seed: 3, Shards: 2},
	}
	build := func(t *testing.T, name string, async bool) *Monitor {
		cfg := base[name]
		if name == "net" {
			cfg.Transport = Loopback(2) // a Transport is owned by one monitor
		}
		if async {
			cfg.Ingest = Ingest{QueueDepth: n}
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatalf("New(%s async=%v): %v", name, async, err)
		}
		t.Cleanup(m.Close)
		return m
	}
	for name := range base {
		for _, dense := range []bool{true, false} {
			sub := name + "/delta"
			if dense {
				sub = name + "/dense"
			}
			t.Run(sub, func(t *testing.T) {
				async := build(t, name, true)
				sync := build(t, name, false)
				src := stream.NewSparseWalk(stream.SparseWalkConfig{
					N: n, Changed: 3, MaxStep: 1 << 11, Lo: 1 << 18, Hi: 1 << 24, Seed: 6,
				})
				ids := make([]int, n)
				vals := make([]int64, n)
				full := make([]int64, n)
				for s := 0; s < steps; s++ {
					c := src.StepDelta(ids, vals)
					for j := 0; j < c; j++ {
						full[ids[j]] = vals[j]
					}
					var want []int
					var err error
					if dense {
						_, err = async.Observe(full)
						if err == nil {
							want, err = sync.Observe(full)
						}
					} else {
						_, err = async.ObserveDelta(ids[:c], vals[:c])
						if err == nil {
							want, err = sync.ObserveDelta(ids[:c], vals[:c])
						}
					}
					if err != nil {
						t.Fatalf("step %d: %v", s, err)
					}
					drainT(t, async)
					if got := async.Top(); !equalIDs(got, want) {
						t.Fatalf("step %d: drained report %v != synchronous %v", s, got, want)
					}
				}
				if g, w := async.Counts(), sync.Counts(); g != w {
					t.Fatalf("counts diverged: async %+v sync %+v", g, w)
				}
				if g, w := async.Bytes(), sync.Bytes(); g != w {
					t.Fatalf("bytes diverged: async %+v sync %+v", g, w)
				}
				if g, w := async.Phases(), sync.Phases(); g != w {
					t.Fatalf("phase counts diverged: async %+v sync %+v", g, w)
				}
				if g, w := async.BytesByPhase(), sync.BytesByPhase(); g != w {
					t.Fatalf("phase bytes diverged: async %+v sync %+v", g, w)
				}
				if g, w := async.Stats(), sync.Stats(); g != w {
					t.Fatalf("stats diverged: async %+v sync %+v", g, w)
				}
				st := async.IngestStats()
				if st.Batches != steps {
					t.Fatalf("drain-per-call run executed %d batches for %d calls", st.Batches, steps)
				}
			})
		}
	}
}

// TestAsyncObserveReturnsNilReport pins the async-mode call shape: a
// staged observation returns no report (the protocol step has not run),
// and Top after a Drain reflects it.
func TestAsyncObserveReturnsNilReport(t *testing.T) {
	m, err := New(Config{Nodes: 4, K: 2, Seed: 1, Ingest: Ingest{QueueDepth: 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	rep, err := m.Observe([]int64{4, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Fatalf("async Observe returned a report: %v", rep)
	}
	drainT(t, m)
	if got := m.Top(); !equalIDs(got, []int{0, 1}) {
		t.Fatalf("Top after Drain = %v, want [0 1]", got)
	}
	// Validation still happens before staging.
	if _, err := m.Observe([]int64{1, 2}); err == nil {
		t.Fatal("wrong-length observation accepted in async mode")
	}
	if _, err := m.ObserveDelta([]int{9}, []int64{1}); err == nil {
		t.Fatal("out-of-range id accepted in async mode")
	}
}

// TestAsyncOverflowError pins the Error policy at the public boundary:
// a full queue rejects the whole call with ErrQueueFull (errors.Is), and
// the monitor stays usable afterwards.
func TestAsyncOverflowError(t *testing.T) {
	const n = 8
	m, err := New(Config{Nodes: n, K: 2, Seed: 1,
		Ingest: Ingest{QueueDepth: 1, Overflow: OverflowError}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Race-free overflow: a single delta call with more fresh nodes than
	// the queue admits must bounce atomically no matter how fast the
	// worker drains.
	_, err = m.ObserveDelta([]int{0, 1}, []int64{1, 2})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflowing call returned %v, want ErrQueueFull", err)
	}
	// The monitor remains usable: a fitting call succeeds and drains.
	if _, err := m.ObserveDelta([]int{5}, []int64{50}); err != nil {
		t.Fatalf("monitor unusable after a rejected call: %v", err)
	}
	drainT(t, m)
	if st := m.IngestStats(); st.Enqueued != 1 {
		t.Fatalf("rejected call leaked updates: %+v", st)
	}
}

// TestAsyncDropOldestCounts pins the lossy policy through IngestStats:
// overload drops the oldest staged updates, and the monitor stays
// consistent after a Drain.
func TestAsyncDropOldestCounts(t *testing.T) {
	const n = 8
	m, err := New(Config{Nodes: n, K: 2, Seed: 1,
		Ingest: Ingest{QueueDepth: 1, Overflow: OverflowDropOldest}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// One call, distinct nodes: with depth 1 every earlier update is
	// evicted as the next lands, deterministically.
	if _, err := m.ObserveDelta([]int{0, 1, 2}, []int64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	drainT(t, m)
	st := m.IngestStats()
	if st.Dropped == 0 {
		t.Fatalf("DropOldest never dropped: %+v", st)
	}
	if st.Enqueued != 3 {
		t.Fatalf("Enqueued = %d, want 3: %+v", st.Enqueued, st)
	}
}

// TestAsyncClosedMonitor pins the closed-monitor vocabulary in async
// mode: observation calls and Drain fail with a closed error, never
// panic or hang.
func TestAsyncClosedMonitor(t *testing.T) {
	m, err := New(Config{Nodes: 4, K: 2, Seed: 1, Ingest: Ingest{QueueDepth: 4}})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if _, err := m.Observe([]int64{1, 2, 3, 4}); err == nil {
		t.Fatal("Observe on a closed async monitor succeeded")
	}
	if err := m.Drain(context.Background()); err == nil {
		t.Fatal("Drain on a closed async monitor succeeded")
	}
	m.Close() // idempotent
}

// TestAsyncDrainSyncMonitor: on a synchronous monitor Drain is a no-op
// barrier (nothing is ever in flight).
func TestAsyncDrainSyncMonitor(t *testing.T) {
	m, err := New(Config{Nodes: 4, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Drain(context.Background()); err != nil {
		t.Fatalf("Drain on a synchronous monitor: %v", err)
	}
	if st := m.IngestStats(); st != (IngestStats{}) {
		t.Fatalf("synchronous monitor reports ingestion activity: %+v", st)
	}
}

// closeCountingTransport records whether New released it on rejection.
type closeCountingTransport struct {
	links  []Link
	closed int
}

func (c *closeCountingTransport) Links() []Link { return c.links }
func (c *closeCountingTransport) Close() error  { c.closed++; return nil }

// TestConfigErrorTyped pins the constructor-error contract introduced
// with the async surface: every rejected configuration surfaces as a
// *ConfigError naming the offending field, retrievable with errors.As,
// and a Transport the constructor took ownership of is closed first.
func TestConfigErrorTyped(t *testing.T) {
	cases := []struct {
		field string
		cfg   Config
	}{
		{"Nodes", Config{Nodes: 0, K: 1}},
		{"K", Config{Nodes: 4, K: 5}},
		{"Epsilon", Config{Nodes: 4, K: 2, Epsilon: 1.5}},
		{"Shards", Config{Nodes: 4, K: 2, Shards: -1}},
		{"Ingest.QueueDepth", Config{Nodes: 4, K: 2, Ingest: Ingest{QueueDepth: -1}}},
		{"Ingest.Overflow", Config{Nodes: 4, K: 2, Ingest: Ingest{QueueDepth: 2, Overflow: OverflowError + 1}}},
		{"Ingest.Overflow", Config{Nodes: 4, K: 2, Ingest: Ingest{QueueDepth: 0, Overflow: OverflowError}}},
		{"Tree", Config{Nodes: 16, K: 2, Tree: Tree{Branch: 1, Depth: 2}}},
		{"Tree", Config{Nodes: 16, K: 2, Tree: Tree{Branch: 2, Depth: 2}}}, // valid shape, but Transport is set below
		{"Checkpoint.Every", Config{Nodes: 4, K: 2, Checkpoint: Checkpoint{Every: -1}}},
		{"Checkpoint.Store", Config{Nodes: 4, K: 2, Checkpoint: Checkpoint{Every: 8}}},
	}
	for _, tc := range cases {
		tr := &closeCountingTransport{}
		tc.cfg.Transport = tr
		_, err := New(tc.cfg)
		if err == nil {
			t.Errorf("config %+v accepted", tc.cfg)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("config %+v: error %v is not a *ConfigError", tc.cfg, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("config %+v: Field = %q, want %q (err: %v)", tc.cfg, ce.Field, tc.field, err)
		}
		if tr.closed == 0 {
			t.Errorf("config %+v: transport not closed on rejection", tc.cfg)
		}
	}
}

// TestOrderedConfigErrorTyped extends the typed-error contract to
// NewOrdered — most importantly the Epsilon rejection, which used to be
// a bare formatted error.
func TestOrderedConfigErrorTyped(t *testing.T) {
	cases := []struct {
		field string
		cfg   Config
	}{
		{"Nodes", Config{Nodes: -2, K: 1}},
		{"K", Config{Nodes: 4, K: 0}},
		{"Epsilon", Config{Nodes: 4, K: 2, Epsilon: 0.1}},
		{"Shards", Config{Nodes: 4, K: 2, Shards: 2}},
		{"Ingest", Config{Nodes: 4, K: 2, Ingest: Ingest{QueueDepth: 8}}},
		{"Tree", Config{Nodes: 8, K: 2, Tree: Tree{Branch: 2, Depth: 1}}},
		{"Checkpoint", Config{Nodes: 4, K: 2, Checkpoint: Checkpoint{Store: MemCheckpoints()}}},
	}
	for _, tc := range cases {
		_, err := NewOrdered(tc.cfg)
		if err == nil {
			t.Errorf("ordered config %+v accepted", tc.cfg)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("ordered config %+v: error %v is not a *ConfigError", tc.cfg, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("ordered config %+v: Field = %q, want %q", tc.cfg, ce.Field, tc.field)
		}
		// The Epsilon rejection is a carried ROADMAP item, not a bug:
		// the error must point readers at the follow-on.
		if tc.field == "Epsilon" && !strings.Contains(err.Error(), "ROADMAP.md") {
			t.Errorf("ordered Epsilon rejection %q does not reference ROADMAP.md", err)
		}
	}
	// The Transport rejection also closes the transport it owns.
	tr := &closeCountingTransport{}
	_, err := NewOrdered(Config{Nodes: 4, K: 2, Transport: tr})
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Field != "Transport" {
		t.Errorf("ordered Transport rejection: %v", err)
	}
	if tr.closed == 0 {
		t.Error("ordered Transport rejection did not close the transport")
	}
}
