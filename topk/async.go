package topk

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ingest"
)

// Ingest configures asynchronous ingestion (Config.Ingest). The zero
// value keeps the monitor synchronous: every observation call blocks
// until its protocol round completes, exactly as before.
//
// With QueueDepth > 0 the monitor decouples ingestion from protocol
// execution on every engine: Observe and ObserveDelta stage their
// updates in a bounded per-node coalescing buffer and return
// immediately (with a nil report), while a single worker goroutine
// takes the buffered batch and runs it as one protocol step. While a
// step executes, a newly staged observation of node i overwrites any
// queued one — never appends — which is semantically free because the
// protocol only ever needs each node's current value; under backlog a
// burst of observation calls therefore collapses into fewer, fresher
// steps instead of a queue of stale ones. Drain flushes the buffer and
// waits out the in-flight step, recovering synchronous semantics on
// demand: observe-then-Drain is bit-identical (reports, message counts,
// charged bytes, per-phase ledgers) to the old blocking observation,
// on all four engines.
//
// In asynchronous mode Observe, ObserveDelta and Drain may be called
// from multiple goroutines concurrently, and every read accessor is
// safe concurrently with the background worker; Close must still be
// the last call, after producers have stopped. Reports read between
// barriers are simply the latest applied step's — call Drain first for
// read-your-writes.
type Ingest struct {
	// QueueDepth bounds how many distinct nodes may have a staged,
	// not-yet-applied observation (further observations of an already
	// staged node coalesce and never consume space). 0 disables
	// asynchronous ingestion; otherwise any positive depth is valid and
	// is capped at Nodes. Dense Observe stages all Nodes updates per
	// call, so dense feeds want QueueDepth == Nodes; a smaller depth
	// still works but may split one dense call across protocol steps
	// under the Block policy.
	QueueDepth int
	// Overflow selects what happens when an observation of a new node
	// arrives while QueueDepth nodes are already staged.
	Overflow OverflowPolicy
}

// OverflowPolicy selects the backpressure behavior of a full ingest
// queue; see Ingest.Overflow.
type OverflowPolicy uint8

const (
	// OverflowBlock (the default) blocks the observation call until the
	// worker takes the staged batch. Lossless: every update is applied.
	OverflowBlock OverflowPolicy = iota
	// OverflowDropOldest evicts the oldest staged observation to admit
	// the new one. Lossy under sustained overload: the evicted node
	// keeps its previously applied value until it is observed again.
	OverflowDropOldest
	// OverflowError rejects the observation call with ErrQueueFull,
	// admitting none of its updates; the monitor stays usable.
	OverflowError
)

// ErrQueueFull is the sentinel wrapped by asynchronous Observe and
// ObserveDelta when the OverflowError policy rejects a call; test with
// errors.Is.
var ErrQueueFull = ingest.ErrQueueFull

// ConfigError is the typed error New and NewOrdered return for an
// invalid Config, per the constructor contract: misconfiguration is
// reported as an error — never a panic — and any Transport the
// constructor took ownership of is closed first. Field names the
// offending Config field (dotted for nested fields, "Ingest.Overflow")
// and Reason describes the rejection; retrieve it with errors.As to
// distinguish construction-time misconfiguration from runtime failures.
type ConfigError struct {
	Field  string
	Reason string
}

// Error formats the rejection as "topk: invalid Config.<Field>: <Reason>".
func (e *ConfigError) Error() string {
	return "topk: invalid Config." + e.Field + ": " + e.Reason
}

// badConfig rejects a configuration with a typed ConfigError, releasing
// the Transport first (see failNew).
func badConfig(cfg Config, field, format string, args ...any) error {
	return failNew(cfg, &ConfigError{Field: field, Reason: fmt.Sprintf(format, args...)})
}

// validateIngest checks the Ingest sub-configuration.
func validateIngest(cfg Config) error {
	if cfg.Ingest.QueueDepth < 0 {
		return badConfig(cfg, "Ingest.QueueDepth", "must be >= 0, got %d", cfg.Ingest.QueueDepth)
	}
	if cfg.Ingest.Overflow > OverflowError {
		return badConfig(cfg, "Ingest.Overflow", "unknown overflow policy %d", cfg.Ingest.Overflow)
	}
	if cfg.Ingest.QueueDepth == 0 && cfg.Ingest.Overflow != OverflowBlock {
		return badConfig(cfg, "Ingest.Overflow", "an overflow policy requires Ingest.QueueDepth > 0")
	}
	return nil
}

// startIngest attaches the asynchronous ingestion driver to a freshly
// constructed monitor (QueueDepth > 0 was validated).
func (m *Monitor) startIngest() error {
	drv, err := ingest.New(ingest.Config{
		N:      m.cfg.Nodes,
		Depth:  m.cfg.Ingest.QueueDepth,
		Policy: ingest.Policy(m.cfg.Ingest.Overflow),
		Apply:  m.applyStep,
	})
	if err != nil {
		return err
	}
	m.allIDs = make([]int, m.cfg.Nodes)
	for i := range m.allIDs {
		m.allIDs[i] = i
	}
	m.drv = drv
	return nil
}

// applyStep runs one coalesced batch as a protocol step on the
// underlying engine. It executes on the ingest worker goroutine; the
// engine mutex serializes it against the read accessors.
func (m *Monitor) applyStep(ids []int, vals []int64) error {
	m.engineMu.Lock()
	defer m.engineMu.Unlock()
	switch {
	case m.seq != nil:
		m.seq.ObserveDelta(ids, vals)
	case m.conc != nil:
		m.conc.ObserveDelta(ids, vals)
	case m.net != nil:
		m.net.ObserveDelta(ids, vals)
		if err := m.net.Err(); err != nil {
			return err
		}
	case m.shard != nil:
		m.shard.ObserveDelta(ids, vals)
		if err := m.shard.Err(); err != nil {
			return err
		}
	default:
		return errors.New("topk: monitor is closed")
	}
	m.maybeCheckpoint()
	return nil
}

// enqueue stages one validated observation call on the driver,
// translating the driver's sentinels into the public vocabulary.
func (m *Monitor) enqueue(ids []int, vals []int64) error {
	err := m.drv.Enqueue(ids, vals)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ingest.ErrClosed):
		return errors.New("topk: monitor is closed")
	default:
		return err
	}
}

// Drain is the flush barrier of asynchronous ingestion: it blocks until
// every staged observation has been applied and no protocol step is in
// flight, then returns nil — at which point Top, Counts, Bytes, Phases
// and Stats reflect every observation staged before the call, exactly
// as if each had been a blocking Observe. It returns the engine's
// terminal error if background execution failed (the same error later
// observation calls return), ctx's error if the context ends first
// (the flush keeps running in the background), or an error on a closed
// monitor. On a synchronous monitor (Ingest.QueueDepth == 0) there is
// never anything in flight and Drain returns nil immediately.
//
// Producers observing concurrently with Drain can extend the wait
// arbitrarily; bound it with ctx.
func (m *Monitor) Drain(ctx context.Context) error {
	if m.drv != nil {
		err := m.drv.Drain(ctx)
		if errors.Is(err, ingest.ErrClosed) {
			return errors.New("topk: monitor is closed")
		}
		return err
	}
	if m.seq == nil && m.conc == nil && m.net == nil && m.shard == nil {
		return errors.New("topk: monitor is closed")
	}
	return nil
}

// IngestStats counts the asynchronous ingestion activity of a monitor.
// A synchronous monitor reports the zero value.
type IngestStats struct {
	// Enqueued counts the per-node updates admitted into the queue.
	Enqueued int64
	// Coalesced counts updates that overwrote a staged one — work the
	// protocol never had to do. Enqueued - Coalesced - Dropped updates
	// reached an executed step.
	Coalesced int64
	// Dropped counts updates evicted under OverflowDropOldest.
	Dropped int64
	// Batches counts the coalesced batches executed as protocol steps
	// (equals Stats().Steps of the engine driven by this queue).
	Batches int64
	// MaxQueue is the high-water mark of distinct staged nodes.
	MaxQueue int
}

// IngestStats returns a snapshot of the asynchronous ingestion counters.
func (m *Monitor) IngestStats() IngestStats {
	if m.drv == nil {
		return IngestStats{}
	}
	s := m.drv.Stats()
	return IngestStats{
		Enqueued:  s.Enqueued,
		Coalesced: s.Coalesced,
		Dropped:   s.Dropped,
		Batches:   s.Steps,
		MaxQueue:  s.MaxQueue,
	}
}
