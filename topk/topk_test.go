package topk

import (
	"testing"

	"repro/internal/stream"
)

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Nodes: 0, K: 1},
		{Nodes: 5, K: 0},
		{Nodes: 5, K: 6},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	if _, err := New(Config{Nodes: 5, K: 5}); err != nil {
		t.Fatalf("K == Nodes should be accepted: %v", err)
	}
}

func TestMonitorBasicFlow(t *testing.T) {
	m, err := New(Config{Nodes: 4, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	top, err := m.Observe([]int64{10, 40, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0] != 1 || top[1] != 3 {
		t.Fatalf("top: %v", top)
	}
	if got := m.Top(); len(got) != 2 || got[0] != 1 {
		t.Fatalf("Top(): %v", got)
	}
	if m.Counts().Total() == 0 {
		t.Fatal("initialization should cost messages")
	}
	if m.Stats().Steps != 1 || m.Stats().Resets != 1 {
		t.Fatalf("stats: %+v", m.Stats())
	}
}

func TestMonitorObserveErrors(t *testing.T) {
	m, _ := New(Config{Nodes: 3, K: 1})
	if _, err := m.Observe([]int64{1, 2}); err == nil {
		t.Fatal("wrong length should error")
	}
	m.Close()
	if _, err := m.Observe([]int64{1, 2, 3}); err == nil {
		t.Fatal("closed monitor should error")
	}
}

func TestMonitorTopBeforeObserve(t *testing.T) {
	m, _ := New(Config{Nodes: 3, K: 2})
	if got := m.Top(); len(got) != 0 {
		t.Fatalf("pre-observe top should be empty: %v", got)
	}
}

func TestBothEnginesAgree(t *testing.T) {
	seqM, err := New(Config{Nodes: 10, K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	conM, err := New(Config{Nodes: 10, K: 3, Seed: 7, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer conM.Close()
	mkSrc := func() stream.Source {
		return stream.NewRandomWalk(stream.WalkConfig{N: 10, Lo: 0, Hi: 100000, MaxStep: 500, Seed: 8})
	}
	a, b := mkSrc(), mkSrc()
	va, vb := make([]int64, 10), make([]int64, 10)
	for s := 0; s < 150; s++ {
		a.Step(va)
		b.Step(vb)
		ta, err1 := seqM.Observe(va)
		tb, err2 := conM.Observe(vb)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for i := range ta {
			if ta[i] != tb[i] {
				t.Fatalf("engines disagree at step %d: %v vs %v", s, ta, tb)
			}
		}
		if seqM.Counts() != conM.Counts() {
			t.Fatalf("counts disagree at step %d", s)
		}
	}
}

func TestMonitorExactOverWorkload(t *testing.T) {
	m, _ := New(Config{Nodes: 12, K: 4, Seed: 9})
	src := stream.NewBursty(stream.BurstyConfig{N: 12, Seed: 10, Lo: 0, Hi: 1 << 20, Noise: 4, BurstProb: 0.05, BurstMax: 1 << 16})
	vals := make([]int64, 12)
	for s := 0; s < 300; s++ {
		src.Step(vals)
		got, err := m.Observe(vals)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Oracle(vals, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d: got %v want %v", s, got, want)
			}
		}
	}
}

func TestPhasesSumToTotal(t *testing.T) {
	m, _ := New(Config{Nodes: 8, K: 2, Seed: 11})
	src := stream.NewIID(stream.IIDConfig{N: 8, Seed: 12, Dist: stream.Uniform, Lo: 0, Hi: 1 << 18})
	vals := make([]int64, 8)
	for s := 0; s < 100; s++ {
		src.Step(vals)
		if _, err := m.Observe(vals); err != nil {
			t.Fatal(err)
		}
	}
	p := m.Phases()
	sum := p.Violation.Total() + p.Handler.Total() + p.Reset.Total()
	if sum != m.Counts().Total() {
		t.Fatalf("phase sum %d != total %d", sum, m.Counts().Total())
	}
}

func TestCloseIdempotent(t *testing.T) {
	m, _ := New(Config{Nodes: 3, K: 1, Concurrent: true})
	m.Close()
	m.Close()
	m2, _ := New(Config{Nodes: 3, K: 1})
	m2.Close()
	m2.Close()
}

func TestOracle(t *testing.T) {
	got, err := Oracle([]int64{5, 9, 1, 9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 9 at nodes 1 and 3; both in top-2.
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("oracle: %v", got)
	}
	if _, err := Oracle(nil, 1); err == nil {
		t.Fatal("empty vector should error")
	}
	if _, err := Oracle([]int64{1}, 2); err == nil {
		t.Fatal("k > n should error")
	}
}

func TestDistinctValuesConfig(t *testing.T) {
	m, err := New(Config{Nodes: 3, K: 1, DistinctValues: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	top, err := m.Observe([]int64{100, 300, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0] != 1 {
		t.Fatalf("top: %v", top)
	}
}
