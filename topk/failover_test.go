package topk_test

import (
	"testing"
	"time"

	"repro/internal/netrun"
	"repro/internal/shardrun"
	"repro/internal/transport"
	"repro/topk"
)

// faultyTransport is a Transport whose links the test pre-wrapped with
// fault plans, standing in for an external caller's own substrate.
type faultyTransport struct{ links []topk.Link }

func (f *faultyTransport) Links() []topk.Link { return f.links }
func (f *faultyTransport) Close() error       { return nil }

// churn fills vals with large fast-moving values that force
// communication on every peer every step.
func churn(s int, vals []int64) {
	for i := range vals {
		vals[i] = int64((s*31+i*17)%1000) * 50
	}
}

// TestHealthSurface pins the zero-value contract of Health across the
// engines: in-process monitors have no links to lose, networked and
// sharded monitors list their live peer ranges.
func TestHealthSurface(t *testing.T) {
	const n, k = 8, 2
	seq, err := topk.New(topk.Config{Nodes: n, K: k, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if h := seq.Health(); h.Terminal != nil || h.Degraded || h.Failures != 0 || len(h.Peers) != 0 {
		t.Fatalf("sequential monitor unhealthy at birth: %+v", h)
	}
	if err := seq.Join(netrun.LoopbackLink()); err == nil {
		t.Fatal("Join on a sequential monitor succeeded")
	}

	sh, err := topk.New(topk.Config{Nodes: n, K: k, Seed: 1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if h := sh.Health(); len(h.Peers) != 2 || h.Peers[0].Lo != 0 || h.Peers[1].Hi != n {
		t.Fatalf("sharded monitor peer ranges off: %+v", h.Peers)
	}

	net, err := topk.New(topk.Config{Nodes: n, K: k, Seed: 1, Transport: topk.Loopback(3)})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if h := net.Health(); len(h.Peers) != 3 {
		t.Fatalf("networked monitor peer ranges off: %+v", h.Peers)
	}
}

// TestFailoverThroughPublicAPI runs the whole failure story over the
// public surface: a peer link dies mid-run, Observe keeps returning
// reports without error, Health degrades then recovers, the Redial
// factory supplies the replacement, and OnEvent sees the lifecycle.
func TestFailoverThroughPublicAPI(t *testing.T) {
	const n, k = 12, 3
	links := []topk.Link{
		netrun.LoopbackLink(),
		netrun.LoopbackLink(),
		transport.NewFaulty(netrun.LoopbackLink(), transport.FaultPlan{KillAt: 60}),
	}
	var events []topk.Event
	mon, err := topk.New(topk.Config{
		Nodes: n, K: k, Seed: 7,
		Transport:    &faultyTransport{links: links},
		Redial:       func() (topk.Link, error) { return topk.Link(netrun.LoopbackLink()), nil },
		RetryBackoff: time.Millisecond,
		OnEvent:      func(ev topk.Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	vals := make([]int64, n)
	sawDegraded := false
	for s := 0; s < 60; s++ {
		churn(s, vals)
		if _, err := mon.Observe(vals); err != nil {
			t.Fatalf("step %d: Observe errored through a recoverable failure: %v", s, err)
		}
		if mon.Health().Degraded {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Fatal("the scripted kill never degraded health")
	}
	h := mon.Health()
	if h.Terminal != nil || h.Degraded {
		t.Fatalf("monitor did not recover: %+v", h)
	}
	if h.Failures == 0 || h.Recoveries == 0 {
		t.Fatalf("health counters off after recovery: %+v", h)
	}
	if len(h.Peers) != 3 {
		t.Fatalf("redial recovery changed the cohort size: %+v", h.Peers)
	}
	wantKinds := map[topk.EventKind]bool{
		topk.EventPeerDown: false, topk.EventPeerReplaced: false, topk.EventRecovered: false,
	}
	for _, ev := range events {
		if _, ok := wantKinds[ev.Kind]; ok {
			wantKinds[ev.Kind] = true
		}
		if ev.Kind.String() == "" {
			t.Fatalf("event kind %d has no name", ev.Kind)
		}
	}
	for kind, seen := range wantKinds {
		if !seen {
			t.Errorf("event %v never delivered (got %v)", kind, events)
		}
	}
}

// TestJoinThroughPublicAPI attaches late joiners to both engines that
// accept them and verifies membership and continued operation.
func TestJoinThroughPublicAPI(t *testing.T) {
	const n, k = 12, 3
	cases := []struct {
		name string
		cfg  topk.Config
		link func() topk.Link
	}{
		{"networked", topk.Config{Nodes: n, K: k, Seed: 5, Transport: topk.Loopback(2)},
			func() topk.Link { return topk.Link(netrun.LoopbackLink()) }},
		{"sharded", topk.Config{Nodes: n, K: k, Seed: 5, Shards: 2},
			func() topk.Link { return topk.Link(shardrun.LoopbackLink()) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mon, err := topk.New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer mon.Close()
			vals := make([]int64, n)
			for s := 0; s < 10; s++ {
				churn(s, vals)
				if _, err := mon.Observe(vals); err != nil {
					t.Fatal(err)
				}
			}
			if err := mon.Join(tc.link()); err != nil {
				t.Fatalf("Join: %v", err)
			}
			if h := mon.Health(); len(h.Peers) != 3 {
				t.Fatalf("join left %d peers, want 3: %+v", len(h.Peers), h.Peers)
			}
			for s := 10; s < 25; s++ {
				churn(s, vals)
				if _, err := mon.Observe(vals); err != nil {
					t.Fatalf("step %d after join: %v", s, err)
				}
			}
			if h := mon.Health(); h.Failures != 0 || h.Degraded || h.Terminal != nil {
				t.Fatalf("join degraded health: %+v", h)
			}
		})
	}
}
