package topk

import (
	"context"
	"errors"
	"testing"
)

// TestTreeConfigErrorTyped pins the full rejection table of the
// hierarchical shape: every invalid Config.Tree surfaces as a
// *ConfigError with Field "Tree", retrievable with errors.As.
func TestTreeConfigErrorTyped(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"branch-below-2", Config{Nodes: 16, K: 2, Tree: Tree{Branch: 1, Depth: 2}}},
		{"depth-below-1", Config{Nodes: 16, K: 2, Tree: Tree{Branch: 2, Depth: -1}}},
		{"leaves-overflow", Config{Nodes: 16, K: 2, Tree: Tree{Branch: 2, Depth: 40}}},
		{"leaves-exceed-nodes", Config{Nodes: 4, K: 2, Tree: Tree{Branch: 2, Depth: 3}}},
		{"tree-and-concurrent", Config{Nodes: 16, K: 2, Concurrent: true, Tree: Tree{Branch: 2, Depth: 2}}},
		{"tree-and-transport", Config{Nodes: 16, K: 2, Transport: Loopback(2), Tree: Tree{Branch: 2, Depth: 2}}},
		{"shards-leaves-mismatch", Config{Nodes: 16, K: 2, Shards: 3, Tree: Tree{Branch: 2, Depth: 2}}},
	}
	for _, tc := range cases {
		_, err := New(tc.cfg)
		if err == nil {
			t.Errorf("%s: config accepted", tc.name)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %v is not a *ConfigError", tc.name, err)
			continue
		}
		if ce.Field != "Tree" {
			t.Errorf("%s: Field = %q, want \"Tree\" (err: %v)", tc.name, ce.Field, err)
		}
	}
	// A redundant-but-consistent Shards is accepted.
	m, err := New(Config{Nodes: 16, K: 2, Shards: 4, Tree: Tree{Branch: 2, Depth: 2}})
	if err != nil {
		t.Fatalf("consistent Shards=4 with a 2^2 tree rejected: %v", err)
	}
	m.Close()
}

// TestTreeMonitorMatchesFlat drives a depth-2 tree monitor and a flat
// sharded monitor with the same leaf count through the public API:
// reports and the algorithm ledger are identical, and the tree's
// diagnostic plane reports one traffic level per tree level with the
// root's overhead ledger as the last entry.
func TestTreeMonitorMatchesFlat(t *testing.T) {
	const n, k, steps = 16, 4, 200
	tree, err := New(Config{Nodes: n, K: k, Seed: 7, Epsilon: 0.05, Tree: Tree{Branch: 2, Depth: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	flat, err := New(Config{Nodes: n, K: k, Seed: 7, Epsilon: 0.05, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()

	vals := make([]int64, n)
	for s := 0; s < steps; s++ {
		for i := range vals {
			vals[i] = int64((s*31+i*17)%1000) * 50
		}
		a, err := tree.Observe(vals)
		if err != nil {
			t.Fatal(err)
		}
		b, err := flat.Observe(vals)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("step %d: reports differ: tree=%v flat=%v", s, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("step %d: reports differ: tree=%v flat=%v", s, a, b)
			}
		}
	}
	if tree.Counts() != flat.Counts() || tree.Bytes() != flat.Bytes() {
		t.Fatalf("algorithm ledgers differ: %v/%v vs %v/%v", tree.Counts(), tree.Bytes(), flat.Counts(), flat.Bytes())
	}

	ts, err := tree.TreeStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Levels) != 2 {
		t.Fatalf("depth-2 tree reports %d traffic levels, want 2", len(ts.Levels))
	}
	if len(ts.Absorbs) != 2 {
		t.Fatalf("depth-2 ε tree reports %d absorption levels, want 2", len(ts.Absorbs))
	}
	overC, overB := tree.Overhead()
	root := ts.Levels[len(ts.Levels)-1]
	if root.Down != overC.Down || root.Up != overC.Up || root.DownBytes != overB.Down || root.UpBytes != overB.Up {
		t.Fatalf("root level %+v disagrees with Overhead %v/%v", root, overC, overB)
	}
	// The tentpole quantity: the root of the tree exchanges strictly
	// fewer coordination frames than the flat root serving the same
	// leaves, because its fan-in is branch instead of branch^depth.
	flatC, _ := flat.Overhead()
	if root.Down+root.Up >= flatC.Down+flatC.Up {
		t.Fatalf("tree root traffic (%d frames) not below flat root traffic (%d frames)",
			root.Down+root.Up, flatC.Down+flatC.Up)
	}

	// Non-sharded monitors report the zero value without error.
	seq, err := New(Config{Nodes: n, K: k})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	if sts, err := seq.TreeStats(); err != nil || len(sts.Absorbs) != 0 || len(sts.Levels) != 0 {
		t.Fatalf("sequential monitor TreeStats = %+v, %v; want zero value", sts, err)
	}
}

// TestTreeMonitorAsync runs a tree monitor behind the asynchronous
// ingest queue: Drain recovers synchronous semantics and the diagnostic
// poll serializes against the worker through the engine mutex.
func TestTreeMonitorAsync(t *testing.T) {
	const n, k = 16, 4
	m, err := New(Config{
		Nodes: n, K: k, Seed: 7, Epsilon: 0.1,
		Tree:   Tree{Branch: 2, Depth: 2},
		Ingest: Ingest{QueueDepth: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	vals := make([]int64, n)
	for s := 0; s < 100; s++ {
		for i := range vals {
			vals[i] = int64((s*31+i*17)%1000) * 50
		}
		if _, err := m.Observe(vals); err != nil {
			t.Fatal(err)
		}
		if s%25 == 24 {
			if err := m.Drain(context.Background()); err != nil {
				t.Fatal(err)
			}
			if _, err := m.TreeStats(); err != nil {
				t.Fatal(err)
			}
		}
	}
}
