package topk

import (
	"testing"
)

// TestShardedMonitorMatchesSequential drives the public sharded engine
// against the sequential one: identical reports at every step for every
// shard count, and a bit-identical ledger at Shards == 1.
func TestShardedMonitorMatchesSequential(t *testing.T) {
	const nodes, k, seed, steps = 24, 5, 99, 200
	for _, shards := range []int{1, 2, 4} {
		seq, err := New(Config{Nodes: nodes, K: k, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		sh, err := New(Config{Nodes: nodes, K: k, Seed: seed, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}

		vals := make([]int64, nodes)
		for s := 0; s < steps; s++ {
			for i := range vals {
				vals[i] = int64((s*37+i*i*11)%5000 - 2500)
			}
			a, errA := seq.Observe(vals)
			b, errB := sh.Observe(vals)
			if errA != nil || errB != nil {
				t.Fatalf("step %d: observe errors: %v / %v", s, errA, errB)
			}
			if !equalIDs(a, b) {
				t.Fatalf("shards=%d step %d: reports differ: seq=%v sharded=%v", shards, s, a, b)
			}
		}
		if shards == 1 {
			if seq.Counts() != sh.Counts() {
				t.Fatalf("S=1 counts differ: %+v vs %+v", seq.Counts(), sh.Counts())
			}
			if seq.Bytes() != sh.Bytes() {
				t.Fatalf("S=1 bytes differ: %+v vs %+v", seq.Bytes(), sh.Bytes())
			}
			if seq.Phases() != sh.Phases() {
				t.Fatalf("S=1 phases differ")
			}
			if seq.Stats() != sh.Stats() {
				t.Fatalf("S=1 stats differ: %+v vs %+v", seq.Stats(), sh.Stats())
			}
		}
		oc, ob := sh.Overhead()
		if oc.Total() == 0 || ob.Total() == 0 {
			t.Fatalf("shards=%d: overhead ledger empty", shards)
		}
		if ts := sh.TransportStats(); ts.SentFrames == 0 {
			t.Fatalf("shards=%d: transport stats empty", shards)
		}
		sh.Close()
	}
}

// TestShardConfigValidation pins the Config.Shards guard rails.
func TestShardConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 4, K: 2, Shards: 5}); err == nil {
		t.Fatal("Shards > Nodes accepted")
	}
	if _, err := New(Config{Nodes: 4, K: 2, Shards: -1}); err == nil {
		t.Fatal("negative Shards accepted")
	}
	if _, err := New(Config{Nodes: 4, K: 2, Shards: 2, Concurrent: true}); err == nil {
		t.Fatal("Shards+Concurrent accepted")
	}
	if _, err := New(Config{Nodes: 4, K: 2, Shards: 2, Transport: Loopback(2)}); err == nil {
		t.Fatal("Shards+Transport accepted")
	}
}

// TestShardedAppendTopIsACopy is the public-API aliasing regression:
// scribbling over AppendTop results must never corrupt later reports.
func TestShardedAppendTopIsACopy(t *testing.T) {
	const nodes, k, seed = 12, 3, 7
	seq, err := New(Config{Nodes: nodes, K: k, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := New(Config{Nodes: nodes, K: k, Seed: seed, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	vals := make([]int64, nodes)
	var copies [][]int
	for s := 0; s < 80; s++ {
		for i := range vals {
			vals[i] = int64((s*41+i*13)%3000) - 1500
		}
		a, _ := seq.Observe(vals)
		b, _ := sh.Observe(vals)
		if !equalIDs(a, b) {
			t.Fatalf("step %d: reports diverged after mutations: %v vs %v", s, a, b)
		}
		copies = append(copies, sh.AppendTop(nil), seq.AppendTop(nil))
		for _, c := range copies {
			for i := range c {
				c[i] = -9
			}
		}
	}
}
