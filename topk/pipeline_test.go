package topk_test

import (
	"testing"

	"repro/topk"
)

// TestPipelineModesBitIdentical drives the networked and sharded engines
// in both pipeline modes against the sequential reference: the Pipeline
// knob may change wall-clock latency and transport framing, never
// reports, counts or charged bytes.
func TestPipelineModesBitIdentical(t *testing.T) {
	const n, k, seed, steps = 24, 4, 33, 200
	mk := func(cfg topk.Config) *topk.Monitor {
		t.Helper()
		m, err := topk.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	seq := mk(topk.Config{Nodes: n, K: k, Seed: seed})
	monitors := map[string]*topk.Monitor{
		"net-on":    mk(topk.Config{Nodes: n, K: k, Seed: seed, Transport: topk.Loopback(3)}),
		"net-off":   mk(topk.Config{Nodes: n, K: k, Seed: seed, Transport: topk.Loopback(3), Pipeline: topk.PipelineOff}),
		"shard-on":  mk(topk.Config{Nodes: n, K: k, Seed: seed, Shards: 1}),
		"shard-off": mk(topk.Config{Nodes: n, K: k, Seed: seed, Shards: 1, Pipeline: topk.PipelineOff}),
	}
	for _, m := range monitors {
		defer m.Close()
	}

	vals := make([]int64, n)
	for s := 0; s < steps; s++ {
		for i := range vals {
			vals[i] = int64((i*29+s*17)%500) * int64(1+i%4)
		}
		want, err := seq.Observe(vals)
		if err != nil {
			t.Fatal(err)
		}
		for name, m := range monitors {
			got, err := m.Observe(vals)
			if err != nil {
				t.Fatalf("%s step %d: %v", name, s, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s step %d: report %v, want %v", name, s, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s step %d: report %v, want %v", name, s, got, want)
				}
			}
		}
	}
	for name, m := range monitors {
		if cs, cm := seq.Counts(), m.Counts(); cs != cm {
			t.Fatalf("%s: counts differ: seq=%+v got=%+v", name, cs, cm)
		}
		if bs, bm := seq.Bytes(), m.Bytes(); bs != bm {
			t.Fatalf("%s: bytes differ: seq=%+v got=%+v", name, bs, bm)
		}
		if ps, pm := seq.BytesByPhase(), m.BytesByPhase(); ps != pm {
			t.Fatalf("%s: phase bytes differ", name)
		}
	}
	// The two sharded monitors must also agree on the overhead ledger:
	// coalesced coordination frames are charged sub-frame by sub-frame.
	onC, onB := monitors["shard-on"].Overhead()
	offC, offB := monitors["shard-off"].Overhead()
	if onC != offC || onB != offB {
		t.Fatalf("shard overhead differs across pipeline modes: on=%+v/%+v off=%+v/%+v", onC, onB, offC, offB)
	}
}

// TestPipelineModeValidation rejects out-of-range Pipeline values.
func TestPipelineModeValidation(t *testing.T) {
	if _, err := topk.New(topk.Config{Nodes: 4, K: 2, Pipeline: topk.PipelineMode(7)}); err == nil {
		t.Fatal("unknown Pipeline mode accepted")
	}
}
