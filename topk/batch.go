package topk

import "fmt"

// BatchResult summarizes a RunTrace execution.
type BatchResult struct {
	// Tops[t] is the top-k report after step t (ascending ids for New,
	// rank order for NewOrdered-backed runs).
	Tops [][]int
	// Counts is the total communication of the run.
	Counts Counts
	// TopChanges counts steps whose report differed from the previous one.
	TopChanges int
}

// RunTrace feeds a recorded observation matrix (rows are time steps,
// columns are nodes) through a fresh monitor built from cfg and returns
// all reports plus the communication bill. It is the batch convenience
// for backtesting a configuration against historical data.
func RunTrace(cfg Config, matrix [][]int64) (BatchResult, error) {
	if len(matrix) == 0 {
		return BatchResult{}, fmt.Errorf("topk: empty trace")
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = len(matrix[0])
	}
	mon, err := New(cfg)
	if err != nil {
		return BatchResult{}, err
	}
	defer mon.Close()
	res := BatchResult{Tops: make([][]int, 0, len(matrix))}
	var prev []int
	for t, row := range matrix {
		top, err := mon.Observe(row)
		if err != nil {
			return BatchResult{}, fmt.Errorf("topk: step %d: %w", t, err)
		}
		if prev != nil && !equalIDs(prev, top) {
			res.TopChanges++
		}
		// Observe returns a view into monitor state; retain a copy.
		res.Tops = append(res.Tops, append([]int(nil), top...))
		prev = res.Tops[len(res.Tops)-1]
	}
	res.Counts = mon.Counts()
	return res, nil
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
