package topk

import "testing"

// TestObserveDeltaMatchesObserve drives both ingestion forms over the same
// logical value sequence and requires identical reports and counts, on
// both engines.
func TestObserveDeltaMatchesObserve(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		name := "sequential"
		if concurrent {
			name = "concurrent"
		}
		t.Run(name, func(t *testing.T) {
			const n, k = 12, 3
			mk := func() *Monitor {
				m, err := New(Config{Nodes: n, K: k, Seed: 17, Concurrent: concurrent})
				if err != nil {
					t.Fatal(err)
				}
				return m
			}
			dense, sparse := mk(), mk()
			defer dense.Close()
			defer sparse.Close()

			cur := make([]int64, n)
			for s := 0; s < 120; s++ {
				// Move two nodes per step, deterministically.
				i1, i2 := s%n, (s*5+1)%n
				if i1 > i2 {
					i1, i2 = i2, i1
				}
				cur[i1] += int64(s%7) - 3
				ids := []int{i1}
				vals := []int64{cur[i1]}
				if i2 != i1 {
					cur[i2] += int64(s%11) - 5
					ids = append(ids, i2)
					vals = append(vals, cur[i2])
				}
				dt, err := dense.Observe(cur)
				if err != nil {
					t.Fatal(err)
				}
				st, err := sparse.ObserveDelta(ids, vals)
				if err != nil {
					t.Fatal(err)
				}
				if !equalIDs(dt, st) {
					t.Fatalf("step %d: dense %v sparse %v", s, dt, st)
				}
				if dense.Counts() != sparse.Counts() {
					t.Fatalf("step %d: counts diverged: %+v vs %+v", s, dense.Counts(), sparse.Counts())
				}
			}
		})
	}
}

// TestObserveDeltaErrors pins the error contract of the public sparse
// path: the public API returns errors where internal engines panic.
func TestObserveDeltaErrors(t *testing.T) {
	m, err := New(Config{Nodes: 4, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range []struct {
		ids  []int
		vals []int64
	}{
		{[]int{0}, []int64{1, 2}},    // length mismatch
		{[]int{1, 1}, []int64{1, 2}}, // duplicate
		{[]int{2, 1}, []int64{1, 2}}, // unsorted
		{[]int{4}, []int64{1}},       // out of range
		{[]int{-1}, []int64{1}},      // negative
	} {
		if _, err := m.ObserveDelta(c.ids, c.vals); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	if _, err := m.ObserveDelta([]int{0, 2}, []int64{5, 9}); err != nil {
		t.Fatalf("valid delta rejected: %v", err)
	}
	m.Close()
	if _, err := m.ObserveDelta([]int{0}, []int64{1}); err == nil {
		t.Fatal("expected error after Close")
	}
}

// TestAppendTopCopies pins that AppendTop survives subsequent steps while
// the Observe view may not.
func TestAppendTopCopies(t *testing.T) {
	m, err := New(Config{Nodes: 6, K: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Observe([]int64{60, 50, 40, 30, 20, 10}); err != nil {
		t.Fatal(err)
	}
	cp := m.AppendTop(nil)
	if len(cp) != 2 || cp[0] != 0 || cp[1] != 1 {
		t.Fatalf("AppendTop = %v, want [0 1]", cp)
	}
	// Promote nodes 4 and 5 far above everyone else.
	if _, err := m.Observe([]int64{60, 50, 40, 30, 2000, 1000}); err != nil {
		t.Fatal(err)
	}
	if cp[0] != 0 || cp[1] != 1 {
		t.Fatalf("AppendTop copy mutated by later step: %v", cp)
	}
	if top := m.Top(); len(top) != 2 || top[0] != 4 || top[1] != 5 {
		t.Fatalf("Top after promotion = %v, want [4 5]", top)
	}
}
