package topk

import (
	"repro/internal/netrun"
	"repro/internal/transport"
)

// Link is one reliable, ordered, message-framed duplex connection to a
// peer process hosting a range of the monitored nodes. It mirrors the
// internal transport abstraction so external callers can plug in their
// own substrate; internal/transport's TCP and pipe links satisfy it.
//
// A Link may additionally implement Flush() error: the engine then
// treats Send as buffered and calls Flush when a fan-out is complete, so
// several frames to the same peer coalesce into one write. Links without
// the method must transmit on Send; the engine probes dynamically and
// never requires Flush.
type Link interface {
	// Send frames one payload; the payload is not retained.
	Send(payload []byte) error
	// Recv blocks for the next frame. The returned slice may alias an
	// internal buffer valid only until the next Recv. Implementations
	// with buffered Sends must flush them before blocking (see
	// internal/transport's flush-before-read guard).
	Recv() ([]byte, error)
	// Close tears the link down. Idempotent.
	Close() error
}

// Transport supplies the networked engine its coordinator-side links, one
// per peer. The far end of every link must be running the node-host serve
// loop (a process started with `topkmon -join`, or the in-process hosts a
// Loopback transport spawns); the engine performs its join handshake over
// each link when the Monitor is created.
type Transport interface {
	// Links returns the coordinator-side links in peer order; peer i
	// hosts the i-th contiguous node range.
	Links() []Link
	// Close releases any resources the transport owns. Links the engine
	// uses are closed by the Monitor itself.
	Close() error
}

// TransportStats aggregates what actually crossed the links of a
// networked monitor: whole frames as framed on the transport, control
// plane included. Compare with Bytes, which charges only the model
// messages the paper's analysis counts. Both in-process engines report
// zero.
type TransportStats struct {
	SentFrames int64
	SentBytes  int64
	RecvFrames int64
	RecvBytes  int64
}

// Loopback returns an in-process Transport with the given number of
// peers: each link's far end is a node-host goroutine, so a Monitor
// created over it exercises the full wire protocol without sockets. It is
// the easiest way to try the networked engine:
//
//	mon, err := topk.New(topk.Config{Nodes: 64, K: 4, Transport: topk.Loopback(4)})
//
// Peers must satisfy 1 <= peers <= Nodes at New time; out-of-range peer
// counts surface as an error from New (a Transport with no links), never
// as a panic.
func Loopback(peers int) Transport {
	if peers < 1 {
		return &loopback{} // rejected by New with a descriptive error
	}
	lb := &loopback{}
	for _, l := range netrun.LoopbackLinks(peers) {
		lb.links = append(lb.links, l)
	}
	return lb
}

type loopback struct {
	links []Link
}

func (l *loopback) Links() []Link { return l.links }

func (l *loopback) Close() error {
	for _, lk := range l.links {
		lk.Close()
	}
	return nil
}

// newNetEngine adapts the public Transport to the internal engine.
func newNetEngine(cfg Config) (*netrun.Engine, error) {
	links := cfg.Transport.Links()
	if len(links) == 0 || len(links) > cfg.Nodes {
		return nil, badConfig(cfg, "Transport", "must supply 1..Nodes links, got %d for %d nodes", len(links), cfg.Nodes)
	}
	internal := make([]transport.Link, len(links))
	for i, l := range links {
		internal[i] = l // method sets match; Stats is optional and probed dynamically
	}
	return netrun.New(netrun.Config{
		N:              cfg.Nodes,
		K:              cfg.K,
		Seed:           cfg.Seed,
		DistinctValues: cfg.DistinctValues,
		Epsilon:        cfg.Epsilon,
		Lockstep:       cfg.Pipeline == PipelineOff,
		Redial:         cfg.redialInternal(),
		RetryBudget:    cfg.RetryBudget,
		RetryBackoff:   cfg.RetryBackoff,
		OnEvent:        cfg.onEventInternal(),
	}, internal)
}
