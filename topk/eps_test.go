package topk

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/stream"
)

func TestEpsilonValidation(t *testing.T) {
	for _, eps := range []float64{-0.01, 1, 2, math.NaN(), math.Inf(1)} {
		if _, err := New(Config{Nodes: 4, K: 2, Epsilon: eps}); err == nil {
			t.Errorf("Epsilon=%v accepted", eps)
		}
	}
	// A rejected Epsilon must still release the transport's serve loops.
	if _, err := New(Config{Nodes: 4, K: 2, Epsilon: 2, Transport: Loopback(2)}); err == nil {
		t.Fatal("bad Epsilon with transport accepted")
	}
}

// TestEpsilonAllEngines runs every engine at ε=0.05 over one drifting
// trace and checks the public contract: each report is a valid
// ε-approximation of the true top-k, and the tolerant run communicates
// strictly less than the exact run of the same engine.
func TestEpsilonAllEngines(t *testing.T) {
	const n, k, steps, eps = 24, 4, 400, 0.05
	src := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 1 << 20, Hi: 1 << 21, MaxStep: 1 << 13, Seed: 19})
	matrix := stream.Collect(src, steps)
	for name, cfg := range engineConfigs(n, k) {
		t.Run(name, func(t *testing.T) {
			exact, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer exact.Close()
			cfgEps := cfg
			cfgEps.Epsilon = eps
			if cfg.Transport != nil {
				cfgEps.Transport = Loopback(2) // transports are single-use
			}
			approx, err := New(cfgEps)
			if err != nil {
				t.Fatal(err)
			}
			defer approx.Close()
			for s, row := range matrix {
				if _, err := exact.Observe(row); err != nil {
					t.Fatal(err)
				}
				top, err := approx.Observe(row)
				if err != nil {
					t.Fatal(err)
				}
				if !sim.EpsValid(row, top, k, eps) {
					t.Fatalf("step %d: report %v is not a valid %.0f%%-approximation", s, top, eps*100)
				}
			}
			if a, e := approx.Counts().Total(), exact.Counts().Total(); a >= e {
				t.Errorf("eps=%v used %d messages, exact used %d — no saving", eps, a, e)
			}
			if a, e := approx.Bytes().Total(), exact.Bytes().Total(); a >= e {
				t.Errorf("eps=%v charged %d bytes, exact charged %d — no saving", eps, a, e)
			}
		})
	}
}

// TestEpsilonZeroBitIdentical pins the ε=0 contract at the public layer:
// an explicit zero tolerance is the exact monitor, message for message
// and byte for byte.
func TestEpsilonZeroBitIdentical(t *testing.T) {
	const n, k, steps = 16, 3, 300
	a, err := New(Config{Nodes: n, K: k, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Config{Nodes: n, K: k, Seed: 7, Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	src := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 18, MaxStep: 900, Seed: 3})
	vals := make([]int64, n)
	for s := 0; s < steps; s++ {
		src.Step(vals)
		ta, err := a.Observe(vals)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := b.Observe(vals)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(ta, tb) {
			t.Fatalf("step %d: reports diverge: %v vs %v", s, ta, tb)
		}
	}
	if a.Counts() != b.Counts() || a.Bytes() != b.Bytes() || a.Phases() != b.Phases() || a.BytesByPhase() != b.BytesByPhase() || a.Stats() != b.Stats() {
		t.Fatal("explicit Epsilon=0 is not bit-identical to the exact monitor")
	}
}

// FuzzObserveBoundary feeds arbitrary fuzzer-chosen observations through
// the sequential engine's public API: in-domain vectors must report the
// oracle set, out-of-domain vectors must error, and nothing may panic.
func FuzzObserveBoundary(f *testing.F) {
	f.Add(int64(0), int64(1), int64(2), int64(3))
	f.Add(int64(math.MaxInt64), int64(math.MinInt64), int64(0), int64(0))
	f.Add(int64(math.MaxInt64/4), int64(-math.MaxInt64/4), int64(math.MaxInt64/4+1), int64(7))
	f.Fuzz(func(t *testing.T, v0, v1, v2, v3 int64) {
		m, err := New(Config{Nodes: 4, K: 2, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		vals := []int64{v0, v1, v2, v3}
		mv := m.MaxValue()
		legal := true
		for _, v := range vals {
			if v > mv || v < -mv {
				legal = false
			}
		}
		top, err := m.Observe(vals)
		if legal {
			if err != nil {
				t.Fatalf("in-domain %v rejected: %v", vals, err)
			}
			want, oerr := Oracle(vals, 2)
			if oerr != nil {
				t.Fatalf("oracle rejected in-domain %v: %v", vals, oerr)
			}
			if !equalIDs(top, want) {
				t.Fatalf("report %v, oracle %v", top, want)
			}
		} else if err == nil {
			t.Fatalf("out-of-domain %v accepted", vals)
		}
	})
}
