package topk

import (
	"errors"
	"fmt"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/runtime"
)

// OrderedMonitor tracks not only which k nodes hold the largest values
// but their exact ranking. It implements the extension the paper sketches
// as future work (§5): the k-boundary is maintained by the main algorithm
// and, within the top band, neighbor-midpoint filters in the style of Lam
// et al. keep the coordinator's ranking estimate exact.
//
// Rank reports cost more communication than set reports (the band's
// internal order changes are otherwise free); see experiment E13 for the
// measured gap. Both engines are available; as with Monitor, they produce
// identical rankings and identical message counts for the same seed.
type OrderedMonitor struct {
	cfg    Config
	maxVal int64
	seq    *core.OrderedMonitor
	conc   *runtime.OrderedRuntime
}

// NewOrdered validates cfg and creates an OrderedMonitor. Concurrent
// monitors must be Closed to release their goroutines. The ordered
// variant supports the sequential and concurrent engines only, and
// supports neither Epsilon (ranks have no ε-approximate semantics yet;
// see ROADMAP.md) nor asynchronous ingestion nor durable checkpointing
// (the order-repair layer has no snapshot form yet). As with New, a
// rejected
// configuration is reported as a *ConfigError naming the offending
// field, and a Transport the constructor took ownership of is closed
// before the error returns.
func NewOrdered(cfg Config) (*OrderedMonitor, error) {
	if cfg.Nodes <= 0 {
		return nil, badConfig(cfg, "Nodes", "must be positive, got %d", cfg.Nodes)
	}
	if cfg.K < 1 || cfg.K > cfg.Nodes {
		return nil, badConfig(cfg, "K", "must satisfy 1 <= K <= Nodes, got K=%d Nodes=%d", cfg.K, cfg.Nodes)
	}
	if cfg.Epsilon != 0 {
		return nil, badConfig(cfg, "Epsilon", "not supported by the ordered monitor (got %v); see ROADMAP.md for the ε-aware ordered variant", cfg.Epsilon)
	}
	if cfg.Transport != nil {
		return nil, badConfig(cfg, "Transport", "not supported by the ordered monitor")
	}
	if cfg.Shards != 0 {
		return nil, badConfig(cfg, "Shards", "not supported by the ordered monitor, got %d", cfg.Shards)
	}
	if !cfg.Tree.zero() {
		return nil, badConfig(cfg, "Tree", "not supported by the ordered monitor, got %d^%d", cfg.Tree.Branch, cfg.Tree.Depth)
	}
	if cfg.Ingest.QueueDepth != 0 || cfg.Ingest.Overflow != OverflowBlock {
		return nil, badConfig(cfg, "Ingest", "asynchronous ingestion is not supported by the ordered monitor")
	}
	if cfg.Checkpoint.Store != nil || cfg.Checkpoint.Every != 0 {
		return nil, badConfig(cfg, "Checkpoint", "durable checkpointing is not supported by the ordered monitor; see ROADMAP.md")
	}
	m := &OrderedMonitor{cfg: cfg, maxVal: maxValueFor(cfg.Nodes, cfg.DistinctValues)}
	if cfg.Concurrent {
		m.conc = runtime.NewOrdered(runtime.Config{N: cfg.Nodes, K: cfg.K, Seed: cfg.Seed, DistinctValues: cfg.DistinctValues})
	} else {
		m.seq = core.NewOrdered(core.Config{N: cfg.Nodes, K: cfg.K, Seed: cfg.Seed, DistinctValues: cfg.DistinctValues})
	}
	return m, nil
}

// Observe feeds one time step and returns the top-k node ids ordered by
// rank, largest value first. The returned slice is freshly allocated.
// As with Monitor.Observe, a wrong-length input or a value outside
// [-MaxValue, MaxValue] is rejected with an error before any state
// changes; no input can panic the monitor.
func (m *OrderedMonitor) Observe(vals []int64) ([]int, error) {
	if len(vals) != m.cfg.Nodes {
		return nil, fmt.Errorf("topk: observed %d values for %d nodes", len(vals), m.cfg.Nodes)
	}
	if err := checkValues(m.maxVal, nil, vals); err != nil {
		return nil, err
	}
	switch {
	case m.seq != nil:
		return m.seq.Observe(vals), nil
	case m.conc != nil:
		return m.conc.Observe(vals), nil
	default:
		return nil, errors.New("topk: monitor is closed")
	}
}

// MaxValue returns the largest observation magnitude the monitor
// accepts, exactly as Monitor.MaxValue.
func (m *OrderedMonitor) MaxValue() int64 { return m.maxVal }

// Top returns the most recently reported ranking without consuming a
// step (empty before the first Observe).
func (m *OrderedMonitor) Top() []int {
	switch {
	case m.seq != nil:
		return m.seq.Top()
	case m.conc != nil:
		return m.conc.Top()
	default:
		return nil
	}
}

// Counts returns the total messages exchanged so far.
func (m *OrderedMonitor) Counts() Counts {
	var c comm.Counts
	switch {
	case m.seq != nil:
		c = m.seq.Counts()
	case m.conc != nil:
		c = m.conc.Counts()
	}
	return Counts{Up: c.Up, Down: c.Down, Broadcast: c.Bcast}
}

// Phases returns the per-phase message breakdown. Order-layer repair
// traffic is attributed to the handler phase.
func (m *OrderedMonitor) Phases() PhaseCounts {
	var led *comm.Ledger
	switch {
	case m.seq != nil:
		led = m.seq.Ledger()
	case m.conc != nil:
		led = m.conc.Ledger()
	default:
		return PhaseCounts{}
	}
	conv := func(c comm.Counts) Counts { return Counts{Up: c.Up, Down: c.Down, Broadcast: c.Bcast} }
	return PhaseCounts{
		Violation: conv(led.PhaseCounts(comm.PhaseViolation)),
		Handler:   conv(led.PhaseCounts(comm.PhaseHandler)),
		Reset:     conv(led.PhaseCounts(comm.PhaseReset)),
	}
}

// Stats returns the boundary layer's behavioural counters (sequential
// engine only; the concurrent engine reports zeroes).
func (m *OrderedMonitor) Stats() Stats {
	if m.seq != nil {
		s := m.seq.Stats()
		return Stats{Steps: s.Steps, ViolationSteps: s.ViolationSteps, Resets: s.Resets, TopChanges: s.TopChanges}
	}
	return Stats{}
}

// Close releases the goroutines of a concurrent monitor. No-op for the
// sequential engine; idempotent.
func (m *OrderedMonitor) Close() {
	if m.conc != nil {
		m.conc.Close()
		m.conc = nil
	}
	m.seq = nil
}
